package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The wire encoding is a hand-rolled little-endian binary format: fixed
// width integers, 4-byte length-prefixed byte strings, and presence tags
// for optional fields. It is deliberately free of reflection so encoding
// cost is predictable on the block-broadcast hot path.

// ErrTruncated reports an encoding that ended before the value it promised.
var ErrTruncated = errors.New("types: truncated encoding")

// maxSliceLen bounds length prefixes so a corrupt or hostile frame cannot
// trigger a huge allocation. 64 MiB comfortably exceeds any block this
// repository produces.
const maxSliceLen = 64 << 20

// encoder appends values to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) id(v BlockID) { e.buf = append(e.buf, v[:]...) }
func (e *encoder) hash(v [32]byte) {
	e.buf = append(e.buf, v[:]...)
}

func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// decoder consumes values from a buffer with a sticky error.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) id() BlockID {
	var id BlockID
	b := d.take(32)
	if b != nil {
		copy(id[:], b)
	}
	return id
}

func (d *decoder) hash() [32]byte {
	var h [32]byte
	b := d.take(32)
	if b != nil {
		copy(h[:], b)
	}
	return h
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || n == 0 {
		// Zero length decodes to nil so that encode/decode round-trips
		// preserve payload identity (a nil Data marks synthetic payloads).
		return nil
	}
	if n > maxSliceLen {
		d.fail(fmt.Errorf("types: slice length %d exceeds limit", n))
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("types: %d trailing bytes after message", len(d.data)-d.off)
	}
	return nil
}

// EncodeMessage serializes any consensus message, prefixed with its kind
// tag. The inverse is DecodeMessage.
func EncodeMessage(m Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, m.WireSize())}
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case *Proposal:
		encodeProposal(e, v)
	case *VoteMsg:
		e.u16(uint16(len(v.Votes)))
		for _, vote := range v.Votes {
			encodeVote(e, vote)
		}
	case *CertMsg:
		encodeOptCert(e, v.Cert)
	case *Advance:
		encodeOptCert(e, v.Notarization)
		encodeOptUnlock(e, v.Unlock)
	case *NewView:
		e.u64(uint64(v.Round))
		e.u16(uint16(v.Sender))
		encodeOptCert(e, v.HighQC)
		e.bytes(v.Signature)
	case *SyncRequest:
		e.u64(uint64(v.From))
		e.u64(uint64(v.To))
	case *SyncResponse:
		e.u32(uint32(len(v.Blocks)))
		for _, b := range v.Blocks {
			encodeBlock(e, b)
		}
		encodeOptCert(e, v.Finalization)
	default:
		return nil, fmt.Errorf("types: cannot encode message of type %T", m)
	}
	return e.buf, nil
}

// DecodeMessage parses a frame produced by EncodeMessage.
func DecodeMessage(data []byte) (Message, error) {
	d := &decoder{data: data}
	kind := MsgKind(d.u8())
	var m Message
	switch kind {
	case MsgProposal:
		m = decodeProposal(d)
	case MsgVote:
		n := int(d.u16())
		vm := &VoteMsg{}
		for i := 0; i < n && d.err == nil; i++ {
			vm.Votes = append(vm.Votes, decodeVote(d))
		}
		m = vm
	case MsgCert:
		m = &CertMsg{Cert: decodeOptCert(d)}
	case MsgAdvance:
		m = &Advance{Notarization: decodeOptCert(d), Unlock: decodeOptUnlock(d)}
	case MsgNewView:
		m = &NewView{
			Round:  Round(d.u64()),
			Sender: ReplicaID(d.u16()),
		}
		m.(*NewView).HighQC = decodeOptCert(d)
		m.(*NewView).Signature = d.bytes()
	case MsgSyncRequest:
		m = &SyncRequest{From: Round(d.u64()), To: Round(d.u64())}
	case MsgSyncResponse:
		sr := &SyncResponse{}
		n := d.u32()
		if d.err == nil && n > 2*MaxSyncBlocks {
			d.fail(fmt.Errorf("types: sync response with %d blocks exceeds limit", n))
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			sr.Blocks = append(sr.Blocks, decodeBlock(d))
		}
		sr.Finalization = decodeOptCert(d)
		m = sr
	default:
		return nil, fmt.Errorf("types: unknown message kind %d", kind)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeProposal(e *encoder, p *Proposal) {
	e.bool(p.Relayed)
	encodeBlock(e, p.Block)
	encodeOptCert(e, p.ParentNotarization)
	encodeOptUnlock(e, p.ParentUnlock)
	if p.FastVote != nil {
		e.bool(true)
		encodeVote(e, *p.FastVote)
	} else {
		e.bool(false)
	}
}

func decodeProposal(d *decoder) *Proposal {
	p := &Proposal{}
	p.Relayed = d.bool()
	p.Block = decodeBlock(d)
	p.ParentNotarization = decodeOptCert(d)
	p.ParentUnlock = decodeOptUnlock(d)
	if d.bool() {
		v := decodeVote(d)
		p.FastVote = &v
	}
	return p
}

func encodeBlock(e *encoder, b *Block) {
	if b == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u64(uint64(b.Round))
	e.u16(uint16(b.Proposer))
	e.u16(uint16(b.Rank))
	e.id(b.Parent)
	encodePayload(e, b.Payload)
	e.bytes(b.Signature)
}

func decodeBlock(d *decoder) *Block {
	if !d.bool() {
		return nil
	}
	b := &Block{
		Round:    Round(d.u64()),
		Proposer: ReplicaID(d.u16()),
		Rank:     Rank(d.u16()),
		Parent:   d.id(),
	}
	b.Payload = decodePayload(d)
	b.Signature = d.bytes()
	return b
}

func encodePayload(e *encoder, p Payload) {
	if p.IsSynthetic() {
		e.u8(1)
		e.u32(p.SynthSize)
		e.u64(p.SynthSeed)
		return
	}
	e.u8(0)
	e.bytes(p.Data)
}

func decodePayload(d *decoder) Payload {
	if d.u8() == 1 {
		return Payload{SynthSize: d.u32(), SynthSeed: d.u64()}
	}
	return Payload{Data: d.bytes()}
}

func encodeVote(e *encoder, v Vote) {
	e.u8(uint8(v.Kind))
	e.u64(uint64(v.Round))
	e.id(v.Block)
	e.u16(uint16(v.Voter))
	e.bytes(v.Signature)
}

func decodeVote(d *decoder) Vote {
	return Vote{
		Kind:      VoteKind(d.u8()),
		Round:     Round(d.u64()),
		Block:     d.id(),
		Voter:     ReplicaID(d.u16()),
		Signature: d.bytes(),
	}
}

func encodeOptCert(e *encoder, c *Certificate) {
	if c == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u8(uint8(c.Kind))
	e.u64(uint64(c.Round))
	e.id(c.Block)
	e.u32(uint32(len(c.Signers)))
	for i, s := range c.Signers {
		e.u16(uint16(s))
		e.bytes(c.Sigs[i])
	}
}

func decodeOptCert(d *decoder) *Certificate {
	if !d.bool() {
		return nil
	}
	c := &Certificate{
		Kind:  CertKind(d.u8()),
		Round: Round(d.u64()),
		Block: d.id(),
	}
	n := d.u32()
	if d.err != nil || n > maxSliceLen/8 {
		d.fail(ErrTruncated)
		return nil
	}
	if n > 0 {
		c.Signers = make([]ReplicaID, 0, n)
		c.Sigs = make([][]byte, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		c.Signers = append(c.Signers, ReplicaID(d.u16()))
		c.Sigs = append(c.Sigs, d.bytes())
	}
	return c
}

func encodeOptUnlock(e *encoder, u *UnlockProof) {
	if u == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u64(uint64(u.Round))
	e.id(u.Block)
	e.bool(u.All)
	e.u32(uint32(len(u.Entries)))
	for _, en := range u.Entries {
		e.u64(uint64(en.Header.Round))
		e.u16(uint16(en.Header.Proposer))
		e.u16(uint16(en.Header.Rank))
		e.id(en.Header.Parent)
		e.hash(en.Header.PayloadDigest)
		e.u32(uint32(len(en.Voters)))
		for i, v := range en.Voters {
			e.u16(uint16(v))
			e.bytes(en.Sigs[i])
		}
	}
}

func decodeOptUnlock(d *decoder) *UnlockProof {
	if !d.bool() {
		return nil
	}
	u := &UnlockProof{
		Round: Round(d.u64()),
		Block: d.id(),
		All:   d.bool(),
	}
	n := d.u32()
	if d.err != nil || n > maxSliceLen/8 {
		d.fail(ErrTruncated)
		return nil
	}
	if n > 0 {
		u.Entries = make([]UnlockEntry, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		en := UnlockEntry{Header: BlockHeader{
			Round:    Round(d.u64()),
			Proposer: ReplicaID(d.u16()),
			Rank:     Rank(d.u16()),
			Parent:   d.id(),
		}}
		en.Header.PayloadDigest = d.hash()
		m := d.u32()
		if d.err != nil || m > maxSliceLen/8 {
			d.fail(ErrTruncated)
			break
		}
		if m > 0 {
			en.Voters = make([]ReplicaID, 0, m)
			en.Sigs = make([][]byte, 0, m)
		}
		for j := uint32(0); j < m && d.err == nil; j++ {
			en.Voters = append(en.Voters, ReplicaID(d.u16()))
			en.Sigs = append(en.Sigs, d.bytes())
		}
		u.Entries = append(u.Entries, en)
	}
	return u
}
