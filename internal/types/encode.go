package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The wire encoding is a hand-rolled little-endian binary format: fixed
// width integers, 4-byte length-prefixed byte strings, and presence tags
// for optional fields. It is deliberately free of reflection so encoding
// cost is predictable on the block-broadcast hot path.

// ErrTruncated reports an encoding that ended before the value it promised.
var ErrTruncated = errors.New("types: truncated encoding")

// maxSliceLen bounds length prefixes so a corrupt or hostile frame cannot
// trigger a huge allocation. 64 MiB comfortably exceeds any block this
// repository produces.
const maxSliceLen = 64 << 20

// encoder appends values to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) id(v BlockID) { e.buf = append(e.buf, v[:]...) }
func (e *encoder) hash(v [32]byte) {
	e.buf = append(e.buf, v[:]...)
}

func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// decoder consumes values from a buffer with a sticky error.
//
// In aliasing mode (alias true) decoded byte slices point into the input
// buffer instead of being copied out; see DecodeMessageInPlace for the
// ownership contract that makes this safe.
type decoder struct {
	data  []byte
	off   int
	err   error
	alias bool
	// scratch coalesces copy-mode byte fields: every decoded signature and
	// payload of one message is carved out of a single backing allocation
	// sized to the input length — a strict upper bound on the sum of all
	// byte fields, so the buffer never regrows and the carved slices never
	// split across backing arrays.
	scratch []byte
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) id() BlockID {
	var id BlockID
	b := d.take(32)
	if b != nil {
		copy(id[:], b)
	}
	return id
}

func (d *decoder) hash() [32]byte {
	var h [32]byte
	b := d.take(32)
	if b != nil {
		copy(h[:], b)
	}
	return h
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || n == 0 {
		// Zero length decodes to nil so that encode/decode round-trips
		// preserve payload identity (a nil Data marks synthetic payloads).
		return nil
	}
	if n > maxSliceLen {
		d.fail(fmt.Errorf("types: slice length %d exceeds limit", n))
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	if d.alias {
		// Zero-copy: the slice aliases the input buffer, whose lifetime
		// the caller has tied to the message (DecodeMessageInPlace).
		return b[:n:n]
	}
	if d.scratch == nil {
		d.scratch = make([]byte, 0, len(d.data)-d.off+int(n))
	}
	off := len(d.scratch)
	d.scratch = append(d.scratch, b...)
	return d.scratch[off:len(d.scratch):len(d.scratch)]
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("types: %d trailing bytes after message", len(d.data)-d.off)
	}
	return nil
}

// EncodeMessage serializes any consensus message, prefixed with its kind
// tag, in exactly one exact-size allocation (EncodedSize bytes). If the
// message already carries a cached encoding (CachedEncoding,
// DecodeMessageInPlace, or a transport frame built from it), that cache is
// returned directly; treat the result as read-only. The inverse is
// DecodeMessage.
func EncodeMessage(m Message) ([]byte, error) {
	if enc := cachedEncoding(m); enc != nil {
		return enc, nil
	}
	return AppendMessage(make([]byte, 0, m.EncodedSize()), m)
}

// AppendMessage appends the wire encoding of m to buf and returns the
// extended slice. Reserving EncodedSize() bytes of spare capacity makes
// the call allocation-free, which is how the TCP frame writer and the
// WAL's record framing share pooled buffers instead of allocating per
// message.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	if enc := cachedEncoding(m); enc != nil {
		return append(buf, enc...), nil
	}
	e := encoder{buf: buf}
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case *Proposal:
		encodeProposal(&e, v)
	case *VoteMsg:
		e.u16(uint16(len(v.Votes)))
		for _, vote := range v.Votes {
			encodeVote(&e, vote)
		}
	case *CertMsg:
		encodeOptCert(&e, v.Cert)
	case *Advance:
		encodeOptCert(&e, v.Notarization)
		encodeOptUnlock(&e, v.Unlock)
	case *NewView:
		e.u64(uint64(v.Round))
		e.u16(uint16(v.Sender))
		encodeOptCert(&e, v.HighQC)
		e.bytes(v.Signature)
	case *SyncRequest:
		e.u64(uint64(v.From))
		e.u64(uint64(v.To))
	case *SyncResponse:
		e.u32(uint32(len(v.Blocks)))
		for _, b := range v.Blocks {
			encodeBlock(&e, b)
		}
		encodeOptCert(&e, v.Finalization)
	case *SnapshotRequest:
		e.u64(uint64(v.Have))
	case *SnapshotResponse:
		e.u32(uint32(len(v.Chain)))
		for _, b := range v.Chain {
			encodeBlock(&e, b)
		}
		encodeOptCert(&e, v.Finalization)
		e.u32(uint32(len(v.Sets)))
		for _, s := range v.Sets {
			encodeValidatorSetDesc(&e, s)
		}
	case *BatchAnnounce:
		e.u16(uint16(v.Origin))
		e.hash(v.Digest)
		encodePayload(&e, v.Body)
	case *BatchRequest:
		e.hash(v.Digest)
	case *BatchResponse:
		e.hash(v.Digest)
		encodePayload(&e, v.Body)
	default:
		return nil, fmt.Errorf("types: cannot encode message of type %T", m)
	}
	return e.buf, nil
}

// CachedEncoding returns the message's wire encoding, computing and
// memoizing it on first call (messages are immutable once constructed, so
// the bytes can never go stale). The encode-once fan-out rides on this:
// the WAL recorder journals the same bytes the TCP transport frames, and
// a message decoded by DecodeMessageInPlace re-encodes for free. The
// returned slice is shared — callers must not modify it.
//
// Concurrency matches the Block.ID contract: the first call must
// happen-before any concurrent use, which holds on the hosts' event
// loops (a message is encoded by the goroutine that created or decoded
// it before any other goroutine sees it).
func CachedEncoding(m Message) ([]byte, error) {
	if enc := cachedEncoding(m); enc != nil {
		return enc, nil
	}
	enc, err := AppendMessage(make([]byte, 0, m.EncodedSize()), m)
	if err != nil {
		return nil, err
	}
	setCachedEncoding(m, enc)
	return enc, nil
}

// cachedEncoding returns the memoized encoding, or nil.
func cachedEncoding(m Message) []byte {
	switch v := m.(type) {
	case *Proposal:
		return v.enc
	case *VoteMsg:
		return v.enc
	case *CertMsg:
		return v.enc
	case *Advance:
		return v.enc
	case *NewView:
		return v.enc
	case *SyncResponse:
		return v.enc
	case *SnapshotResponse:
		return v.enc
	case *BatchAnnounce:
		return v.enc
	case *BatchResponse:
		return v.enc
	}
	return nil
}

// setCachedEncoding installs a memoized encoding. enc must hold exactly
// the message's wire bytes and must never be modified afterwards.
func setCachedEncoding(m Message, enc []byte) {
	switch v := m.(type) {
	case *Proposal:
		v.enc = enc
	case *VoteMsg:
		v.enc = enc
	case *CertMsg:
		v.enc = enc
	case *Advance:
		v.enc = enc
	case *NewView:
		v.enc = enc
	case *SyncResponse:
		v.enc = enc
	case *SnapshotResponse:
		v.enc = enc
	case *BatchAnnounce:
		v.enc = enc
	case *BatchResponse:
		v.enc = enc
	}
}

// SetCachedEncoding records enc as m's wire encoding without copying.
// enc must be exactly the bytes EncodeMessage would produce (typically
// the body of a frame that was just encoded or received) and must not be
// modified afterwards. Transports use it to share one encoded frame
// between consumers.
func SetCachedEncoding(m Message, enc []byte) { setCachedEncoding(m, enc) }

// DecodeMessage parses a frame produced by EncodeMessage. Decoded byte
// fields are copied out of data, so the caller keeps ownership of it.
func DecodeMessage(data []byte) (Message, error) {
	return decodeMessage(data, false)
}

// DecodeMessageInPlace parses a frame like DecodeMessage but without
// copying: every byte field of the returned message (signatures, payload
// data) aliases data, and data is retained as the message's cached
// encoding.
//
// Ownership contract: the caller transfers data to the message. The
// buffer must not be modified, reused, or returned to a pool afterwards,
// and it stays reachable as long as the message (or any state derived
// from its slices, such as vote ledger entries) lives. Receive paths
// that allocate a fresh buffer per frame — the TCP read loop — satisfy
// this for free; paths that scan a long-lived mapped region (WAL segment
// recovery) must keep copying and use DecodeMessage.
func DecodeMessageInPlace(data []byte) (Message, error) {
	m, err := decodeMessage(data, true)
	if err == nil {
		setCachedEncoding(m, data)
	}
	return m, err
}

func decodeMessage(data []byte, alias bool) (Message, error) {
	d := &decoder{data: data, alias: alias}
	kind := MsgKind(d.u8())
	var m Message
	switch kind {
	case MsgProposal:
		m = decodeProposal(d)
	case MsgVote:
		n := int(d.u16())
		a := &voteMsgArena{}
		vm := &a.vm
		if n <= len(a.votes) {
			// The common bundle (fast vote + notarization vote) fits the
			// arena; oversized messages fall back to append growth.
			vm.Votes = a.votes[:0]
		}
		for i := 0; i < n && d.err == nil; i++ {
			vm.Votes = append(vm.Votes, decodeVote(d))
		}
		m = vm
	case MsgCert:
		m = &CertMsg{Cert: decodeOptCert(d)}
	case MsgAdvance:
		m = &Advance{Notarization: decodeOptCert(d), Unlock: decodeOptUnlock(d)}
	case MsgNewView:
		m = &NewView{
			Round:  Round(d.u64()),
			Sender: ReplicaID(d.u16()),
		}
		m.(*NewView).HighQC = decodeOptCert(d)
		m.(*NewView).Signature = d.bytes()
	case MsgSyncRequest:
		m = &SyncRequest{From: Round(d.u64()), To: Round(d.u64())}
	case MsgSyncResponse:
		sr := &SyncResponse{}
		n := d.u32()
		// Same bound onSyncResponse enforces — an oversized response must
		// die in the decoder, not survive to be half-trusted upstream.
		if d.err == nil && n > MaxSyncBlocks {
			d.fail(fmt.Errorf("types: sync response with %d blocks exceeds limit", n))
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			sr.Blocks = append(sr.Blocks, decodeBlock(d))
		}
		sr.Finalization = decodeOptCert(d)
		m = sr
	case MsgSnapshotRequest:
		m = &SnapshotRequest{Have: Round(d.u64())}
	case MsgSnapshotResponse:
		sr := &SnapshotResponse{}
		n := d.u32()
		if d.err == nil && n > MaxSnapshotBlocks {
			d.fail(fmt.Errorf("types: snapshot response with %d blocks exceeds limit", n))
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			sr.Chain = append(sr.Chain, decodeBlock(d))
		}
		sr.Finalization = decodeOptCert(d)
		k := d.u32()
		if d.err == nil && k > MaxSnapshotSets {
			d.fail(fmt.Errorf("types: snapshot response with %d validator sets exceeds limit", k))
		}
		for i := uint32(0); i < k && d.err == nil; i++ {
			sr.Sets = append(sr.Sets, decodeValidatorSetDesc(d))
		}
		m = sr
	case MsgBatchAnnounce:
		m = &BatchAnnounce{
			Origin: ReplicaID(d.u16()),
			Digest: d.hash(),
			Body:   decodePayload(d),
		}
	case MsgBatchRequest:
		m = &BatchRequest{Digest: d.hash()}
	case MsgBatchResponse:
		m = &BatchResponse{Digest: d.hash(), Body: decodePayload(d)}
	default:
		return nil, fmt.Errorf("types: unknown message kind %d", kind)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendBlock appends the wire encoding of a block (the same layout
// blocks use inside messages) to buf. BlockEncodedSize bytes of spare
// capacity make the call allocation-free. The WAL's checkpoint records
// use it to frame finalized-chain windows.
func AppendBlock(buf []byte, b *Block) []byte {
	e := encoder{buf: buf}
	encodeBlock(&e, b)
	return e.buf
}

// BlockEncodedSize returns the exact length AppendBlock produces.
func BlockEncodedSize(b *Block) int { return blockEncodedSize(b) }

// DecodeBlockPrefix decodes one block from the front of data, returning
// the block and the number of bytes consumed. Byte fields are copied out
// of data. The inverse of AppendBlock.
func DecodeBlockPrefix(data []byte) (*Block, int, error) {
	d := &decoder{data: data}
	b := decodeBlock(d)
	if d.err != nil {
		return nil, 0, d.err
	}
	return b, d.off, nil
}

func encodeProposal(e *encoder, p *Proposal) {
	e.bool(p.Relayed)
	encodeBlock(e, p.Block)
	encodeOptCert(e, p.ParentNotarization)
	encodeOptUnlock(e, p.ParentUnlock)
	if p.FastVote != nil {
		e.bool(true)
		encodeVote(e, *p.FastVote)
	} else {
		e.bool(false)
	}
}

// Decode arenas collapse the read path's per-object allocations into a
// single one: the arena embeds every sub-object a decoded message
// retains, plus fixed-capacity backing arrays for the short slices
// (certificate signers, vote bundles). The scratch is deliberately not
// pooled — vote ledgers and round state retain decoded messages
// indefinitely, so the objects must live as long as the message; the win
// is one allocation instead of six, not reuse.
const arenaSigners = 64

type proposalArena struct {
	p       Proposal
	b       Block
	c       Certificate
	fv      Vote
	cc      ConfigChange
	signers [arenaSigners]ReplicaID
	sigs    [arenaSigners][]byte
}

type voteMsgArena struct {
	vm    VoteMsg
	votes [4]Vote
}

func decodeProposal(d *decoder) *Proposal {
	a := &proposalArena{}
	p := &a.p
	p.Relayed = d.bool()
	if d.bool() {
		p.Block = decodeBlockInto(&a.b, d, &a.cc)
	}
	p.ParentNotarization = decodeOptCertInto(&a.c, a.signers[:0], a.sigs[:0], d)
	p.ParentUnlock = decodeOptUnlock(d)
	if d.bool() {
		a.fv = decodeVote(d)
		p.FastVote = &a.fv
	}
	return p
}

func encodeBlock(e *encoder, b *Block) {
	if b == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u64(uint64(b.Round))
	e.u32(b.Epoch)
	e.u16(uint16(b.Proposer))
	e.u16(uint16(b.Rank))
	e.id(b.Parent)
	encodePayload(e, b.Payload)
	e.bytes(b.Signature)
}

func decodeBlock(d *decoder) *Block {
	if !d.bool() {
		return nil
	}
	return decodeBlockInto(&Block{}, d, nil)
}

// decodeBlockInto decodes a block body (after its presence tag) into a
// caller-provided struct — the arena variant of decodeBlock. cc, when
// non-nil, is arena scratch for a change-bearing payload's ConfigChange.
func decodeBlockInto(b *Block, d *decoder, cc *ConfigChange) *Block {
	b.Round = Round(d.u64())
	b.Epoch = d.u32()
	b.Proposer = ReplicaID(d.u16())
	b.Rank = Rank(d.u16())
	b.Parent = d.id()
	b.Payload = decodePayloadInto(d, cc)
	b.Signature = d.bytes()
	return b
}

func encodePayload(e *encoder, p Payload) {
	if p.Change != nil {
		// Reconfig wrapper: tag 3 carries the change, then the content
		// form encodes as usual behind it.
		e.u8(3)
		e.u8(uint8(p.Change.Op))
		e.u16(uint16(p.Change.Replica))
		e.bytes(p.Change.PubKey)
	}
	if p.HasBatches() {
		e.u8(2)
		e.u32(uint32(len(p.Batches)))
		for _, r := range p.Batches {
			e.hash(r.Digest)
			e.u32(r.Size)
		}
		e.bytes(p.Data)
		return
	}
	if p.IsSynthetic() {
		e.u8(1)
		e.u32(p.SynthSize)
		e.u64(p.SynthSeed)
		return
	}
	e.u8(0)
	e.bytes(p.Data)
}

func decodePayload(d *decoder) Payload {
	return decodePayloadInto(d, nil)
}

// decodePayloadInto is decodePayload with optional arena scratch for the
// reconfig wrapper's ConfigChange (nil allocates one on demand).
func decodePayloadInto(d *decoder, cc *ConfigChange) Payload {
	tag := d.u8()
	if tag == 3 {
		if cc == nil {
			cc = &ConfigChange{}
		}
		cc.Op = ConfigOp(d.u8())
		cc.Replica = ReplicaID(d.u16())
		cc.PubKey = d.bytes()
		p := decodeBasePayload(d, d.u8())
		p.Change = cc
		return p
	}
	return decodeBasePayload(d, tag)
}

func decodeBasePayload(d *decoder, tag uint8) Payload {
	switch tag {
	case 1:
		return Payload{SynthSize: d.u32(), SynthSeed: d.u64()}
	case 2:
		n := d.u32()
		if d.err != nil || n > MaxBatchRefs {
			d.fail(fmt.Errorf("types: payload with %d batch refs exceeds limit", n))
			return Payload{}
		}
		var refs []BatchRef
		if n > 0 {
			refs = make([]BatchRef, 0, n)
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			refs = append(refs, BatchRef{Digest: d.hash(), Size: d.u32()})
		}
		return Payload{Batches: refs, Data: d.bytes()}
	case 3:
		// A nested reconfig wrapper is malformed — one change per payload.
		d.fail(fmt.Errorf("types: nested payload change wrapper"))
		return Payload{}
	default:
		return Payload{Data: d.bytes()}
	}
}

func encodeValidatorSetDesc(e *encoder, s *ValidatorSetDesc) {
	e.u32(s.Epoch)
	e.u64(uint64(s.Activation))
	e.u16(s.F)
	e.u16(s.P)
	e.u32(uint32(len(s.Members)))
	for i, m := range s.Members {
		e.u16(uint16(m))
		e.bytes(s.Keys[i])
	}
}

func decodeValidatorSetDesc(d *decoder) *ValidatorSetDesc {
	s := &ValidatorSetDesc{
		Epoch:      d.u32(),
		Activation: Round(d.u64()),
		F:          d.u16(),
		P:          d.u16(),
	}
	n := d.u32()
	if d.err != nil || n > MaxValidatorSetMembers {
		d.fail(fmt.Errorf("types: validator set with %d members exceeds limit", n))
		return nil
	}
	if n > 0 {
		s.Members = make([]ReplicaID, 0, n)
		s.Keys = make([][]byte, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		s.Members = append(s.Members, ReplicaID(d.u16()))
		s.Keys = append(s.Keys, d.bytes())
	}
	s.Members = InternReplicaIDs(s.Members)
	return s
}

// AppendValidatorSetDesc appends the wire encoding of one validator-set
// descriptor to buf (the same layout SnapshotResponse uses); the WAL's
// checkpoint records frame set histories with it. EncodedSize bytes of
// spare capacity make the call allocation-free.
func AppendValidatorSetDesc(buf []byte, s *ValidatorSetDesc) []byte {
	e := encoder{buf: buf}
	encodeValidatorSetDesc(&e, s)
	return e.buf
}

// DecodeValidatorSetDescPrefix decodes one descriptor from the front of
// data, returning it and the number of bytes consumed. Byte fields are
// copied out of data. The inverse of AppendValidatorSetDesc.
func DecodeValidatorSetDescPrefix(data []byte) (*ValidatorSetDesc, int, error) {
	d := &decoder{data: data}
	s := decodeValidatorSetDesc(d)
	if d.err != nil {
		return nil, 0, d.err
	}
	return s, d.off, nil
}

func encodeVote(e *encoder, v Vote) {
	e.u8(uint8(v.Kind))
	e.u64(uint64(v.Round))
	e.id(v.Block)
	e.u16(uint16(v.Voter))
	e.bytes(v.Signature)
}

func decodeVote(d *decoder) Vote {
	return Vote{
		Kind:      VoteKind(d.u8()),
		Round:     Round(d.u64()),
		Block:     d.id(),
		Voter:     ReplicaID(d.u16()),
		Signature: d.bytes(),
	}
}

func encodeOptCert(e *encoder, c *Certificate) {
	if c == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u8(uint8(c.Kind))
	e.u64(uint64(c.Round))
	e.id(c.Block)
	e.u32(uint32(len(c.Signers)))
	for i, s := range c.Signers {
		e.u16(uint16(s))
		e.bytes(c.Sigs[i])
	}
}

func decodeOptCert(d *decoder) *Certificate {
	if !d.bool() {
		return nil
	}
	c := &Certificate{
		Kind:  CertKind(d.u8()),
		Round: Round(d.u64()),
		Block: d.id(),
	}
	n := d.u32()
	if d.err != nil || n > maxSliceLen/8 {
		d.fail(ErrTruncated)
		return nil
	}
	if n > 0 {
		c.Signers = make([]ReplicaID, 0, n)
		c.Sigs = make([][]byte, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		c.Signers = append(c.Signers, ReplicaID(d.u16()))
		c.Sigs = append(c.Sigs, d.bytes())
	}
	return c
}

// decodeOptCertInto is decodeOptCert backed by arena storage: signers and
// sigs are zero-length slices over the arena's fixed arrays, used as long
// as the signer count fits and falling back to exact-size heap slices
// when it does not.
func decodeOptCertInto(c *Certificate, signers []ReplicaID, sigs [][]byte, d *decoder) *Certificate {
	if !d.bool() {
		return nil
	}
	c.Kind = CertKind(d.u8())
	c.Round = Round(d.u64())
	c.Block = d.id()
	n := d.u32()
	if d.err != nil || n > maxSliceLen/8 {
		d.fail(ErrTruncated)
		return nil
	}
	if int(n) > cap(signers) {
		signers = make([]ReplicaID, 0, n)
		sigs = make([][]byte, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		signers = append(signers, ReplicaID(d.u16()))
		sigs = append(sigs, d.bytes())
	}
	if n > 0 {
		c.Signers = signers
		c.Sigs = sigs
	}
	return c
}

func encodeOptUnlock(e *encoder, u *UnlockProof) {
	if u == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.u64(uint64(u.Round))
	e.id(u.Block)
	e.bool(u.All)
	e.u32(uint32(len(u.Entries)))
	for _, en := range u.Entries {
		e.u64(uint64(en.Header.Round))
		e.u32(en.Header.Epoch)
		e.u16(uint16(en.Header.Proposer))
		e.u16(uint16(en.Header.Rank))
		e.id(en.Header.Parent)
		e.hash(en.Header.PayloadDigest)
		e.u32(uint32(len(en.Voters)))
		for i, v := range en.Voters {
			e.u16(uint16(v))
			e.bytes(en.Sigs[i])
		}
	}
}

func decodeOptUnlock(d *decoder) *UnlockProof {
	if !d.bool() {
		return nil
	}
	u := &UnlockProof{
		Round: Round(d.u64()),
		Block: d.id(),
		All:   d.bool(),
	}
	n := d.u32()
	if d.err != nil || n > maxSliceLen/8 {
		d.fail(ErrTruncated)
		return nil
	}
	if n > 0 {
		u.Entries = make([]UnlockEntry, 0, n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		en := UnlockEntry{Header: BlockHeader{
			Round:    Round(d.u64()),
			Epoch:    d.u32(),
			Proposer: ReplicaID(d.u16()),
			Rank:     Rank(d.u16()),
			Parent:   d.id(),
		}}
		en.Header.PayloadDigest = d.hash()
		m := d.u32()
		if d.err != nil || m > maxSliceLen/8 {
			d.fail(ErrTruncated)
			break
		}
		if m > 0 {
			en.Voters = make([]ReplicaID, 0, m)
			en.Sigs = make([][]byte, 0, m)
		}
		for j := uint32(0); j < m && d.err == nil; j++ {
			en.Voters = append(en.Voters, ReplicaID(d.u16()))
			en.Sigs = append(en.Sigs, d.bytes())
		}
		u.Entries = append(u.Entries, en)
	}
	return u
}
