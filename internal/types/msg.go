package types

import "fmt"

// MsgKind tags the wire type of a consensus message.
type MsgKind uint8

const (
	// MsgProposal carries a block together with its parent's credentials.
	// Used by every engine (HotStuff reads ParentNotarization as its QC).
	MsgProposal MsgKind = iota + 1
	// MsgVote carries one or more votes (Banyan bundles a fast vote with the
	// first notarization vote of a round, Algorithm 1 line 39).
	MsgVote
	// MsgCert broadcasts a certificate (finalization, fast-finalization, or
	// a bare notarization).
	MsgCert
	// MsgAdvance is Banyan's round-advance broadcast: the notarization and
	// unlock proof of the block that closed the round (Addition 1, line 50).
	MsgAdvance
	// MsgNewView is the HotStuff pacemaker's timeout message carrying the
	// sender's highest QC to the next leader.
	MsgNewView
	// MsgSyncRequest asks peers for the finalized chain segment a lagging
	// replica is missing (the catch-up subprotocol; production ICC has an
	// equivalent state-sync component the paper leaves out of scope).
	MsgSyncRequest
	// MsgSyncResponse returns finalized blocks plus a finalization
	// certificate proving the segment.
	MsgSyncResponse
	// MsgSnapshotRequest asks one peer for its finalized-window snapshot;
	// sent by a replica whose missing prefix no peer can serve via
	// MsgSyncRequest (fresh join, disk loss, or a deep-pruned cluster).
	MsgSnapshotRequest
	// MsgSnapshotResponse returns a finalized chain window plus the
	// finalization certificate that anchors it; the requester trusts
	// nothing in it until the certificate passes quorum verification.
	MsgSnapshotResponse
	// MsgBatchAnnounce carries one disseminated batch body from its origin
	// to the cluster, off the consensus path; an empty-body announce sent
	// back to the origin doubles as an availability ack.
	MsgBatchAnnounce
	// MsgBatchRequest asks one peer for a batch body by digest (the
	// fetch-on-miss path of delivery gating).
	MsgBatchRequest
	// MsgBatchResponse returns a requested batch body; the digest makes it
	// self-certifying, so any peer may serve it.
	MsgBatchResponse
)

func (k MsgKind) String() string {
	switch k {
	case MsgProposal:
		return "proposal"
	case MsgVote:
		return "vote"
	case MsgCert:
		return "cert"
	case MsgAdvance:
		return "advance"
	case MsgNewView:
		return "new-view"
	case MsgSyncRequest:
		return "sync-request"
	case MsgSyncResponse:
		return "sync-response"
	case MsgSnapshotRequest:
		return "snapshot-request"
	case MsgSnapshotResponse:
		return "snapshot-response"
	case MsgBatchAnnounce:
		return "batch-announce"
	case MsgBatchRequest:
		return "batch-request"
	case MsgBatchResponse:
		return "batch-response"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is the interface implemented by everything exchanged between
// replicas.
//
// WireSize is the number of bytes the message is charged on the wire: the
// discrete-event simulator bills it against link bandwidth, and synthetic
// payloads count at their logical size even though their encoding is a
// small descriptor.
//
// EncodedSize is the exact length of EncodeMessage's output. Encoders use
// it to make one exact-size allocation (or none, with AppendMessage into
// a pooled buffer); for concrete payloads it equals WireSize.
type Message interface {
	Kind() MsgKind
	WireSize() int
	EncodedSize() int
}

// Proposal carries a block proposal (or a relayed block: Algorithm 1 line
// 35 re-broadcasts a block one votes for, together with the same parent
// credentials).
type Proposal struct {
	Block *Block
	// ParentNotarization proves the parent was notarized. Nil when the
	// parent is the genesis block. HotStuff uses this field as the block's
	// justify QC.
	ParentNotarization *Certificate
	// ParentUnlock proves the parent was unlocked (Banyan, Addition 2).
	// Nil when the parent is genesis or explicitly finalized.
	ParentUnlock *UnlockProof
	// FastVote is the proposer's own fast vote for the block; required when
	// the block has rank 0 (Algorithm 2 line 63, Addition 2).
	FastVote *Vote
	// Relayed marks a forwarded copy rather than the original proposal.
	Relayed bool

	enc []byte // memoized wire encoding (CachedEncoding)
}

func (*Proposal) Kind() MsgKind { return MsgProposal }

// WireSize sums the proposal's components; the block's payload counts at
// its logical size so synthetic payloads are charged like real ones.
func (p *Proposal) WireSize() int {
	s := 1 + 2 // kind tag + flags
	s += blockWireSize(p.Block)
	s += certWireSize(p.ParentNotarization)
	s += unlockWireSize(p.ParentUnlock)
	if p.FastVote != nil {
		s += voteWireSize(*p.FastVote)
	}
	return s
}

// VoteMsg carries one or more votes from a single replica.
type VoteMsg struct {
	Votes []Vote

	enc []byte // memoized wire encoding (CachedEncoding)
}

func (*VoteMsg) Kind() MsgKind { return MsgVote }

func (m *VoteMsg) WireSize() int {
	s := 1 + 2
	for _, v := range m.Votes {
		s += voteWireSize(v)
	}
	return s
}

// CertMsg broadcasts a certificate on its own.
type CertMsg struct {
	Cert *Certificate

	enc []byte // memoized wire encoding (CachedEncoding)
}

func (*CertMsg) Kind() MsgKind { return MsgCert }

func (m *CertMsg) WireSize() int { return 1 + certWireSize(m.Cert) }

// Advance is Banyan's end-of-round broadcast: the notarization of the
// round's notarized-and-unlocked block plus its unlock proof, guaranteeing
// every honest replica can enter the next round (Addition 1).
type Advance struct {
	Notarization *Certificate
	Unlock       *UnlockProof

	enc []byte // memoized wire encoding (CachedEncoding)
}

func (*Advance) Kind() MsgKind { return MsgAdvance }

func (m *Advance) WireSize() int {
	return 1 + certWireSize(m.Notarization) + unlockWireSize(m.Unlock)
}

// NewView is the HotStuff pacemaker timeout message.
type NewView struct {
	Round  Round
	Sender ReplicaID
	HighQC *Certificate
	// Signature authenticates the (round, sender) pair.
	Signature []byte

	enc []byte // memoized wire encoding (CachedEncoding)
}

func (*NewView) Kind() MsgKind { return MsgNewView }

func (m *NewView) WireSize() int {
	return 1 + 8 + 2 + certWireSize(m.HighQC) + sliceWireSize(m.Signature)
}

// EncodedSize implements Message. For synthetic payloads the encoding is
// a 13-byte descriptor rather than the logical bytes WireSize charges.
func (p *Proposal) EncodedSize() int {
	s := 1 + 2 // kind tag + flags
	s += blockEncodedSize(p.Block)
	s += certWireSize(p.ParentNotarization)
	s += unlockWireSize(p.ParentUnlock)
	if p.FastVote != nil {
		s += voteWireSize(*p.FastVote)
	}
	return s
}

// EncodedSize implements Message.
func (m *VoteMsg) EncodedSize() int { return m.WireSize() }

// EncodedSize implements Message.
func (m *CertMsg) EncodedSize() int { return m.WireSize() }

// EncodedSize implements Message.
func (m *Advance) EncodedSize() int { return m.WireSize() }

// EncodedSize implements Message.
func (m *NewView) EncodedSize() int { return m.WireSize() }

// EncodedSize implements Message.
func (*SyncRequest) EncodedSize() int { return 1 + 8 + 8 }

// EncodedSize implements Message.
func (m *SyncResponse) EncodedSize() int {
	s := 1 + 4
	for _, b := range m.Blocks {
		s += blockEncodedSize(b)
	}
	return s + certWireSize(m.Finalization)
}

func blockWireSize(b *Block) int {
	if b == nil {
		return 1
	}
	// round + epoch + proposer + rank + parent + payload + signature
	return 1 + 8 + 4 + 2 + 2 + 32 + payloadWireSize(b.Payload) + sliceWireSize(b.Signature)
}

// blockEncodedSize is blockWireSize with the payload at its encoded —
// not logical — size.
func blockEncodedSize(b *Block) int {
	if b == nil {
		return 1
	}
	return 1 + 8 + 4 + 2 + 2 + 32 + payloadEncodedSize(b.Payload) + sliceWireSize(b.Signature)
}

func payloadWireSize(p Payload) int {
	if p.HasBatches() {
		// Digest-list payloads are as small on the wire as in the encoding:
		// the bodies travel (and are billed) out-of-band in BatchAnnounce,
		// so the vote path stays independent of block size.
		return payloadEncodedSize(p)
	}
	// change wrapper + tag + (length prefix + logical bytes)
	return changeEncodedSize(p.Change) + 1 + 4 + p.Size()
}

// payloadEncodedSize is the exact encoding length: synthetic payloads
// travel as a (size, seed) descriptor, digest-list payloads as
// (count, refs..., inline tail), and a ConfigChange rides as a wrapper
// tag ahead of any of the three content forms.
func payloadEncodedSize(p Payload) int {
	s := changeEncodedSize(p.Change)
	if p.HasBatches() {
		return s + 1 + 4 + batchRefEncodedSize*len(p.Batches) + 4 + len(p.Data)
	}
	if p.IsSynthetic() {
		return s + 1 + 4 + 8
	}
	return s + 1 + 4 + len(p.Data)
}

// changeEncodedSize is the wire footprint of the reconfig wrapper: outer
// tag + op + replica + key; zero when the payload carries no change.
func changeEncodedSize(c *ConfigChange) int {
	if c == nil {
		return 0
	}
	return 1 + 1 + 2 + sliceWireSize(c.PubKey)
}

// batchRefEncodedSize is the wire footprint of one BatchRef: 32-byte
// digest plus 4-byte size.
const batchRefEncodedSize = 32 + 4

func voteWireSize(v Vote) int {
	return 1 + 8 + 32 + 2 + sliceWireSize(v.Signature)
}

func certWireSize(c *Certificate) int {
	if c == nil {
		return 1
	}
	s := 1 + 1 + 8 + 32 + 4
	s += 2 * len(c.Signers)
	for _, sig := range c.Sigs {
		s += sliceWireSize(sig)
	}
	return s
}

func unlockWireSize(u *UnlockProof) int {
	if u == nil {
		return 1
	}
	s := 1 + 8 + 32 + 1 + 4
	for _, e := range u.Entries {
		s += 8 + 4 + 2 + 2 + 32 + 32 + 4 + 2*len(e.Voters)
		for _, sig := range e.Sigs {
			s += sliceWireSize(sig)
		}
	}
	return s
}

func sliceWireSize(b []byte) int { return 4 + len(b) }

// SyncRequest asks peers for finalized blocks in rounds [From, To]. A
// replica that detects it is behind (a finalization certificate for a
// round it cannot connect to its tree) broadcasts one, rate-limited, and
// repeats until caught up.
// SyncRequest stays comparable (tests use ==) and is 17 bytes on the
// wire, so it carries no encoding cache.
type SyncRequest struct {
	From Round
	To   Round
}

// Kind implements Message.
func (*SyncRequest) Kind() MsgKind { return MsgSyncRequest }

// WireSize implements Message.
func (*SyncRequest) WireSize() int { return 1 + 8 + 8 }

// SyncResponse carries a finalized chain segment (ascending rounds) and
// the responder's latest finalization certificate, which transitively
// proves every block in the segment once the requester's tree connects.
type SyncResponse struct {
	Blocks       []*Block
	Finalization *Certificate

	enc []byte // memoized wire encoding (CachedEncoding)
}

// Kind implements Message.
func (*SyncResponse) Kind() MsgKind { return MsgSyncResponse }

// WireSize implements Message.
func (m *SyncResponse) WireSize() int {
	s := 1 + 4
	for _, b := range m.Blocks {
		s += blockWireSize(b)
	}
	return s + certWireSize(m.Finalization)
}

// MaxSyncBlocks bounds the blocks in one SyncResponse; requesters iterate.
const MaxSyncBlocks = 64

// SnapshotRequest asks a single peer for its finalized-window snapshot.
// Have is the requester's finalized round; a peer replies only when its
// window tip is strictly ahead. Unlike SyncRequest it is always unicast —
// the fetch scheduler (internal/statesync) rotates peers on timeout
// instead of fanning out.
// SnapshotRequest stays comparable (tests use ==) and is 9 bytes on the
// wire, so it carries no encoding cache.
type SnapshotRequest struct {
	Have Round
}

// Kind implements Message.
func (*SnapshotRequest) Kind() MsgKind { return MsgSnapshotRequest }

// WireSize implements Message.
func (*SnapshotRequest) WireSize() int { return 1 + 8 }

// EncodedSize implements Message.
func (*SnapshotRequest) EncodedSize() int { return 1 + 8 }

// SnapshotResponse carries the responder's finalized chain window
// (ascending, contiguous rounds ending at its window tip) and a
// finalization certificate at or above the tip. The requester verifies
// the certificate against the quorum before adopting anything — the
// certificate, not the sender, is the trust anchor.
//
// Sets is the responder's validator-set history (ascending epochs,
// genesis first): joiners bootstrap membership and state together. The
// requester checks the history chains structurally from its own trusted
// prefix before verifying the certificate against the final set.
type SnapshotResponse struct {
	Chain        []*Block
	Finalization *Certificate
	Sets         []*ValidatorSetDesc

	enc []byte // memoized wire encoding (CachedEncoding)
}

// Kind implements Message.
func (*SnapshotResponse) Kind() MsgKind { return MsgSnapshotResponse }

// WireSize implements Message.
func (m *SnapshotResponse) WireSize() int {
	s := 1 + 4
	for _, b := range m.Chain {
		s += blockWireSize(b)
	}
	return s + certWireSize(m.Finalization) + setsEncodedSize(m.Sets)
}

// EncodedSize implements Message.
func (m *SnapshotResponse) EncodedSize() int {
	s := 1 + 4
	for _, b := range m.Chain {
		s += blockEncodedSize(b)
	}
	return s + certWireSize(m.Finalization) + setsEncodedSize(m.Sets)
}

func setsEncodedSize(sets []*ValidatorSetDesc) int {
	s := 4
	for _, d := range sets {
		s += d.EncodedSize()
	}
	return s
}

// MaxSnapshotBlocks bounds the window in one SnapshotResponse. Windows
// are PruneKeep-sized (default 16), so this is generous headroom rather
// than a pagination unit.
const MaxSnapshotBlocks = 1024

// MaxBatchRefs bounds the digest list of one payload; the decoder rejects
// anything larger so a hostile proposal cannot force a huge allocation.
const MaxBatchRefs = 1 << 16

// BatchAnnounce pushes one batch body from its origin replica to the
// cluster, continuously and off the consensus path. The digest is the
// body's Payload digest, making the message self-certifying: receivers
// verify body-against-digest and ignore the sender identity. An announce
// with an empty body, unicast back to the origin, is the availability
// ack the origin counts before referencing the batch from a proposal.
type BatchAnnounce struct {
	Origin ReplicaID
	Digest [32]byte
	Body   Payload

	enc []byte // memoized wire encoding (CachedEncoding)
}

// Kind implements Message.
func (*BatchAnnounce) Kind() MsgKind { return MsgBatchAnnounce }

// WireSize implements Message: the body is billed at its logical size —
// this is where the bandwidth cost of dissemination lives, instead of on
// the proposer's uplink.
func (m *BatchAnnounce) WireSize() int { return 1 + 2 + 32 + payloadWireSize(m.Body) }

// EncodedSize implements Message.
func (m *BatchAnnounce) EncodedSize() int { return 1 + 2 + 32 + payloadEncodedSize(m.Body) }

// IsAck reports whether the announce is an empty-body availability ack.
func (m *BatchAnnounce) IsAck() bool { return m.Body.Size() == 0 }

// BatchRequest asks one peer for a batch body by digest. Like
// SnapshotRequest it is always unicast — the dissem fetch scheduler
// rotates peers on timeout instead of fanning out. It stays comparable
// (tests use ==) and is 33 bytes on the wire, so it carries no encoding
// cache.
type BatchRequest struct {
	Digest [32]byte
}

// Kind implements Message.
func (*BatchRequest) Kind() MsgKind { return MsgBatchRequest }

// WireSize implements Message.
func (*BatchRequest) WireSize() int { return 1 + 32 }

// EncodedSize implements Message.
func (*BatchRequest) EncodedSize() int { return 1 + 32 }

// BatchResponse returns a requested batch body. The requester verifies
// the body digests to the requested value before storing it; a mismatch
// is dropped and the fetch rotates to the next peer.
type BatchResponse struct {
	Digest [32]byte
	Body   Payload

	enc []byte // memoized wire encoding (CachedEncoding)
}

// Kind implements Message.
func (*BatchResponse) Kind() MsgKind { return MsgBatchResponse }

// WireSize implements Message.
func (m *BatchResponse) WireSize() int { return 1 + 32 + payloadWireSize(m.Body) }

// EncodedSize implements Message.
func (m *BatchResponse) EncodedSize() int { return 1 + 32 + payloadEncodedSize(m.Body) }

// Compile-time interface checks.
var (
	_ Message = (*Proposal)(nil)
	_ Message = (*VoteMsg)(nil)
	_ Message = (*CertMsg)(nil)
	_ Message = (*Advance)(nil)
	_ Message = (*NewView)(nil)
	_ Message = (*SyncRequest)(nil)
	_ Message = (*SyncResponse)(nil)
	_ Message = (*SnapshotRequest)(nil)
	_ Message = (*SnapshotResponse)(nil)
	_ Message = (*BatchAnnounce)(nil)
	_ Message = (*BatchRequest)(nil)
	_ Message = (*BatchResponse)(nil)
)
