package types

import (
	"math/rand"
	"testing"
)

// Benchmark fixtures: realistic steady-state messages. A proposal with a
// 512-byte payload, a 64-byte block signature and a 3-signer parent
// notarization models the per-round block broadcast; the two-vote
// VoteMsg models the bundled notarize+fast vote every replica sends once
// per round (Algorithm 1 line 39).

func benchSig(r *rand.Rand, n int) []byte {
	s := make([]byte, n)
	r.Read(s)
	return s
}

func benchVote(r *rand.Rand, kind VoteKind, round Round, voter ReplicaID) Vote {
	v := Vote{Kind: kind, Round: round, Voter: voter, Signature: benchSig(r, 64)}
	r.Read(v.Block[:])
	return v
}

func benchProposal() *Proposal {
	r := rand.New(rand.NewSource(42))
	payload := make([]byte, 512)
	r.Read(payload)
	b := NewBlock(9, 2, 0, BlockID{1, 2, 3}, BytesPayload(payload))
	b.Signature = benchSig(r, 64)
	cert := &Certificate{Kind: CertNotarization, Round: 8, Block: BlockID{4, 5}}
	for i := 0; i < 3; i++ {
		cert.Signers = append(cert.Signers, ReplicaID(i))
		cert.Sigs = append(cert.Sigs, benchSig(r, 64))
	}
	fv := benchVote(r, VoteFast, 9, 2)
	return &Proposal{Block: b, ParentNotarization: cert, FastVote: &fv}
}

func benchVoteMsg() *VoteMsg {
	r := rand.New(rand.NewSource(43))
	return &VoteMsg{Votes: []Vote{
		benchVote(r, VoteNotarize, 9, 1),
		benchVote(r, VoteFast, 9, 1),
	}}
}

// BenchmarkEncodeDecode measures the wire codec on the block-broadcast
// hot path: encoding charges the proposer once per message, decoding
// charges every receiver once per delivery.
func BenchmarkEncodeDecode(b *testing.B) {
	bench := func(name string, m Message) {
		enc, err := EncodeMessage(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("encode/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			for i := 0; i < b.N; i++ {
				if _, err := EncodeMessage(m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			for i := 0; i < b.N; i++ {
				if _, err := DecodeMessage(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode-inplace/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			for i := 0; i < b.N; i++ {
				if _, err := DecodeMessageInPlace(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("encode-cached/"+name, func(b *testing.B) {
			if _, err := CachedEncoding(m); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			for i := 0; i < b.N; i++ {
				if _, err := EncodeMessage(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bench("proposal", benchProposal())
	bench("votemsg", benchVoteMsg())
}
