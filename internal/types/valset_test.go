package types

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomDesc(r *rand.Rand) *ValidatorSetDesc {
	n := r.Intn(6) + 3
	d := &ValidatorSetDesc{
		Epoch:      uint32(r.Intn(100)),
		Activation: Round(r.Uint64() >> 16),
		F:          1,
		P:          1,
	}
	id := 0
	for i := 0; i < n; i++ {
		id += r.Intn(3) + 1 // ascending, possibly sparse
		d.Members = append(d.Members, ReplicaID(id))
		k := make([]byte, r.Intn(48)+16)
		r.Read(k)
		d.Keys = append(d.Keys, k)
	}
	return d
}

func TestValidatorSetDescRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		d := randomDesc(r)
		enc := AppendValidatorSetDesc(nil, d)
		if len(enc) != d.EncodedSize() {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), d.EncodedSize())
		}
		// Trailing bytes belong to the next descriptor; the prefix decoder
		// must consume exactly one.
		enc = append(enc, 0xAA, 0xBB)
		got, n, err := DecodeValidatorSetDescPrefix(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != d.EncodedSize() {
			t.Fatalf("consumed %d bytes, want %d", n, d.EncodedSize())
		}
		if !got.Equal(d) {
			t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got, d)
		}
	}
	if _, _, err := DecodeValidatorSetDescPrefix([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated descriptor decoded")
	}
}

func TestInternReplicaIDs(t *testing.T) {
	dense := []ReplicaID{0, 1, 2, 3, 4}
	in := InternReplicaIDs(dense)
	if len(in) != len(dense) {
		t.Fatalf("interned length %d, want %d", len(in), len(dense))
	}
	for i, id := range in {
		if id != dense[i] {
			t.Fatalf("interned[%d] = %d, want %d", i, id, dense[i])
		}
	}
	if &in[0] == &dense[0] {
		t.Fatal("dense list not redirected to the shared table")
	}
	again := InternReplicaIDs([]ReplicaID{0, 1, 2, 3, 4})
	if &in[0] != &again[0] {
		t.Fatal("two dense lists interned to different backings")
	}
	// The shared backing must be capacity-clipped: appending to an interned
	// slice may not scribble over the next table entry.
	grown := append(in, 99)
	if InternReplicaIDs([]ReplicaID{0, 1, 2, 3, 4, 5})[5] != 5 {
		t.Fatal("append through an interned slice corrupted the shared table")
	}
	_ = grown

	sparse := []ReplicaID{0, 2, 3}
	if out := InternReplicaIDs(sparse); &out[0] != &sparse[0] {
		t.Fatal("sparse list was interned")
	}
	if out := InternReplicaIDs(nil); out != nil && len(out) != 0 {
		t.Fatal("nil intern broken")
	}
	huge := make([]ReplicaID, internedDenseIDs+1)
	for i := range huge {
		huge[i] = ReplicaID(i)
	}
	if out := InternReplicaIDs(huge); &out[0] != &huge[0] {
		t.Fatal("over-bound dense list was interned")
	}
}

func TestValidatorSetDescValidate(t *testing.T) {
	good := &ValidatorSetDesc{
		Members: []ReplicaID{0, 1, 2, 3},
		Keys:    [][]byte{{1}, {2}, {3}, {4}},
		F:       1, P: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		mangle func(*ValidatorSetDesc)
	}{
		{"key count mismatch", func(d *ValidatorSetDesc) { d.Keys = d.Keys[:3] }},
		{"unsorted members", func(d *ValidatorSetDesc) { d.Members[0], d.Members[1] = d.Members[1], d.Members[0] }},
		{"duplicate member", func(d *ValidatorSetDesc) { d.Members[1] = d.Members[0] }},
		{"below Banyan bound", func(d *ValidatorSetDesc) { d.Members = d.Members[:2]; d.Keys = d.Keys[:2] }},
	}
	for _, tc := range bad {
		d := &ValidatorSetDesc{
			Members: append([]ReplicaID(nil), good.Members...),
			Keys:    append([][]byte(nil), good.Keys...),
			F:       1, P: 1,
		}
		tc.mangle(d)
		if err := d.Validate(); err == nil {
			t.Errorf("Validate accepted %s", tc.name)
		}
	}
}

// TestConfigChangePayloadIdentity: a change is part of payload (and so
// block) identity — the same bytes with and without a change, or with
// different changes, must digest differently; the same change must digest
// identically.
func TestConfigChangePayloadIdentity(t *testing.T) {
	inner := BytesPayload([]byte("transactions"))
	add := ConfigChange{Op: ConfigAdd, Replica: 4, PubKey: []byte("pk4")}
	withAdd := ConfigChangePayload(add, inner)
	again := ConfigChangePayload(add, BytesPayload([]byte("transactions")))

	if withAdd.Digest() == inner.Digest() {
		t.Fatal("change did not alter the payload digest")
	}
	if withAdd.Digest() != again.Digest() {
		t.Fatal("identical change-bearing payloads digest differently")
	}
	rm := ConfigChangePayload(ConfigChange{Op: ConfigRemove, Replica: 4}, inner)
	if rm.Digest() == withAdd.Digest() {
		t.Fatal("different changes digest identically")
	}
	otherKey := ConfigChangePayload(ConfigChange{Op: ConfigAdd, Replica: 4, PubKey: []byte("evil")}, inner)
	if otherKey.Digest() == withAdd.Digest() {
		t.Fatal("changing the joiner's key did not alter the digest")
	}
}

// TestConfigChangeProposalRoundTrip: epoch and change survive the wire —
// and block identity (which hashes both) is preserved.
func TestConfigChangeProposalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		b := randomBlock(r)
		change := ConfigChange{Op: ConfigAdd, Replica: ReplicaID(r.Intn(64)), PubKey: []byte("joinkey")}
		if r.Intn(2) == 0 {
			change = ConfigChange{Op: ConfigRemove, Replica: ReplicaID(r.Intn(64))}
		}
		b.Payload = ConfigChangePayload(change, b.Payload)
		got := roundTrip(t, &Proposal{Block: b}).(*Proposal)
		if got.Block.ID() != b.ID() {
			t.Fatal("block identity changed across the wire")
		}
		if got.Block.Epoch != b.Epoch {
			t.Fatalf("epoch %d decoded as %d", b.Epoch, got.Block.Epoch)
		}
		c := got.Block.Payload.Change
		if c == nil || !c.Equal(&change) {
			t.Fatalf("change %v decoded as %v", &change, c)
		}
	}
}

func TestConfigChangeEqual(t *testing.T) {
	a := &ConfigChange{Op: ConfigAdd, Replica: 4, PubKey: []byte("k")}
	if !a.Equal(a) || a.Equal(nil) || (*ConfigChange)(nil).Equal(a) {
		t.Fatal("Equal nil handling broken")
	}
	b := &ConfigChange{Op: ConfigAdd, Replica: 4, PubKey: []byte("k")}
	if !a.Equal(b) {
		t.Fatal("identical changes not equal")
	}
	for _, o := range []*ConfigChange{
		{Op: ConfigRemove, Replica: 4, PubKey: []byte("k")},
		{Op: ConfigAdd, Replica: 5, PubKey: []byte("k")},
		{Op: ConfigAdd, Replica: 4, PubKey: []byte("x")},
	} {
		if a.Equal(o) {
			t.Fatalf("distinct changes %v and %v compare equal", a, o)
		}
	}
	if !bytes.Equal(a.PubKey, []byte("k")) {
		t.Fatal("Equal mutated its operand")
	}
}
