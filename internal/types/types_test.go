package types

import (
	"testing"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		params  Params
		wantErr bool
	}{
		{"classic n=4 f=1 p=1", Params{N: 4, F: 1, P: 1}, false},
		{"paper n=19 f=6 p=1", Params{N: 19, F: 6, P: 1}, false},
		{"paper n=19 f=4 p=4", Params{N: 19, F: 4, P: 4}, false},
		{"p exceeds f", Params{N: 19, F: 4, P: 5}, true},
		{"n too small", Params{N: 18, F: 6, P: 1}, true},
		{"n below 3f+1", Params{N: 9, F: 3, P: 1}, true},
		{"boundary n=3f+2p-1", Params{N: 12, F: 3, P: 2}, false},
		{"below boundary", Params{N: 11, F: 3, P: 2}, true},
		{"zero n", Params{N: 0, F: 0, P: 0}, true},
		{"negative f", Params{N: 4, F: -1, P: 0}, true},
		{"f=0 p=0 n=1", Params{N: 1, F: 0, P: 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate(%v) error = %v, wantErr %v", tt.params, err, tt.wantErr)
			}
		})
	}
}

func TestQuorums(t *testing.T) {
	tests := []struct {
		params                   Params
		notar, fast, unlock, icc int
	}{
		// n=3f+1, p=1: notarization quorum collapses to 2f+1 = n-f.
		{Params{N: 4, F: 1, P: 1}, 3, 3, 2, 3},
		{Params{N: 19, F: 6, P: 1}, 13, 18, 7, 13},
		// n=19, f=4, p=4: quorum ceil((19+4+1)/2) = 12, fast 15.
		{Params{N: 19, F: 4, P: 4}, 12, 15, 8, 15},
		// Boundary case n = 3f+2p-1 = 12, f=3, p=2: ceil(16/2)=8 = 2f+p.
		{Params{N: 12, F: 3, P: 2}, 8, 10, 5, 9},
	}
	for _, tt := range tests {
		if got := tt.params.NotarizationQuorum(); got != tt.notar {
			t.Errorf("%v NotarizationQuorum = %d, want %d", tt.params, got, tt.notar)
		}
		if got := tt.params.FinalizationQuorum(); got != tt.notar {
			t.Errorf("%v FinalizationQuorum = %d, want %d", tt.params, got, tt.notar)
		}
		if got := tt.params.FastQuorum(); got != tt.fast {
			t.Errorf("%v FastQuorum = %d, want %d", tt.params, got, tt.fast)
		}
		if got := tt.params.UnlockThreshold(); got != tt.unlock {
			t.Errorf("%v UnlockThreshold = %d, want %d", tt.params, got, tt.unlock)
		}
		if got := tt.params.ICCQuorum(); got != tt.icc {
			t.Errorf("%v ICCQuorum = %d, want %d", tt.params, got, tt.icc)
		}
	}
}

// TestQuorumIntersection verifies the safety-critical arithmetic of Lemma
// 8.4: two quorums of ceil((n+f+1)/2) must intersect in at least one
// honest replica for every valid (n, f, p).
func TestQuorumIntersection(t *testing.T) {
	for f := 1; f <= 12; f++ {
		for p := 1; p <= f; p++ {
			min := 3*f + 2*p - 1
			if m := 3*f + 1; m > min {
				min = m
			}
			for n := min; n <= min+5; n++ {
				params := Params{N: n, F: f, P: p}
				if err := params.Validate(); err != nil {
					t.Fatalf("unexpected invalid params %v: %v", params, err)
				}
				q := params.NotarizationQuorum()
				// Two quorums of size q overlap in 2q - n replicas; more
				// than f of them must be honest.
				if 2*q-n <= f {
					t.Errorf("%v: quorums of %d overlap in %d <= f=%d replicas",
						params, q, 2*q-n, f)
				}
				// The fast quorum must also be a Byzantine quorum (Theorem
				// 8.6 uses intersection between fast and notarization
				// quorums).
				fq := params.FastQuorum()
				if fq+q-n <= f {
					t.Errorf("%v: fast %d and notarization %d overlap in %d <= f",
						params, fq, q, fq+q-n)
				}
			}
		}
	}
}

// TestFastQuorumImpliesUnlock verifies the fact engine correctness relies
// on: an FP-finalized block (n-p fast votes) is always unlockable via
// Condition 1 — n-p > f+p for all valid parameters.
func TestFastQuorumImpliesUnlock(t *testing.T) {
	for f := 1; f <= 12; f++ {
		for p := 1; p <= f; p++ {
			min := 3*f + 2*p - 1
			if m := 3*f + 1; m > min {
				min = m
			}
			params := Params{N: min, F: f, P: p}
			if params.FastQuorum() <= params.UnlockThreshold() {
				t.Errorf("%v: fast quorum %d does not exceed unlock threshold %d",
					params, params.FastQuorum(), params.UnlockThreshold())
			}
		}
	}
}

func TestBanyanParams(t *testing.T) {
	tests := []struct {
		n, p  int
		wantF int
	}{
		{19, 1, 6}, // the paper's f=6, p=1 configuration
		{19, 4, 4}, // the paper's f=4, p=4 configuration
		{4, 1, 1},
		{7, 2, 2}, // n >= 3f+2p-1 = 9? no: f=2,p=2 -> 9 > 7; f=1? p<=f fails... expect f=2 invalid, fallback
	}
	for _, tt := range tests[:3] {
		got, err := BanyanParams(tt.n, tt.p)
		if err != nil {
			t.Fatalf("BanyanParams(%d, %d): %v", tt.n, tt.p, err)
		}
		if got.F != tt.wantF {
			t.Errorf("BanyanParams(%d, %d).F = %d, want %d", tt.n, tt.p, got.F, tt.wantF)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("BanyanParams(%d, %d) invalid: %v", tt.n, tt.p, err)
		}
	}
	if _, err := BanyanParams(3, 1); err == nil {
		t.Error("BanyanParams(3, 1) should fail: n too small for p=1")
	}
	if _, err := BanyanParams(10, 0); err == nil {
		t.Error("BanyanParams(10, 0) should fail: p must be >= 1")
	}
}

func TestMaxFaultyFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2}, {19, 6}, {100, 33},
	}
	for _, tt := range tests {
		if got := MaxFaultyFor(tt.n); got != tt.want {
			t.Errorf("MaxFaultyFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestPayloadMaterializeDeterministic(t *testing.T) {
	p := SyntheticPayload(1000, 77)
	a, b := p.Materialize(), p.Materialize()
	if string(a) != string(b) {
		t.Fatal("synthetic materialization is not deterministic")
	}
	if len(a) != 1000 {
		t.Fatalf("materialized %d bytes, want 1000", len(a))
	}
	other := SyntheticPayload(1000, 78).Materialize()
	if string(a) == string(other) {
		t.Fatal("different seeds produced identical content")
	}
	concrete := BytesPayload([]byte("abc"))
	if string(concrete.Materialize()) != "abc" {
		t.Fatal("concrete materialization must return the data")
	}
	// Zero seed must not degenerate (the xorshift state may not be zero).
	z := SyntheticPayload(64, 0).Materialize()
	allZero := true
	for _, c := range z {
		if c != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero-seed payload degenerated to zeros")
	}
}

func TestBlockIdentity(t *testing.T) {
	g := Genesis()
	if !g.IsGenesis() {
		t.Fatal("genesis not recognized")
	}
	if Genesis().ID() != g.ID() {
		t.Fatal("genesis ID not canonical")
	}
	a := NewBlock(3, 1, 0, g.ID(), BytesPayload([]byte("x")))
	b := NewBlock(3, 1, 0, g.ID(), BytesPayload([]byte("x")))
	c := NewBlock(3, 1, 0, g.ID(), BytesPayload([]byte("y")))
	if !a.Equal(b) {
		t.Fatal("identical blocks must be equal")
	}
	if a.Equal(c) {
		t.Fatal("payload change must change identity")
	}
	if a.ID() == c.ID() {
		t.Fatal("digest collision")
	}
	if !a.HeaderEqualExceptPayload(c) {
		t.Fatal("HeaderEqualExceptPayload should hold for a payload-only change")
	}
	d := NewBlock(4, 1, 0, g.ID(), BytesPayload([]byte("x")))
	if a.HeaderEqualExceptPayload(d) {
		t.Fatal("round change must break header equality")
	}
	var nilBlock *Block
	if a.Equal(nilBlock) || !nilBlock.Equal(nil) {
		t.Fatal("nil equality semantics wrong")
	}
}

func TestBlockIDString(t *testing.T) {
	id := BlockID{0xAB, 0xCD}
	if got := id.String(); got != "abcd000000ff"[:12] && len(got) != 12 {
		t.Fatalf("BlockID.String() = %q", got)
	}
	if !ZeroBlockID.IsZero() {
		t.Fatal("zero block ID not zero")
	}
	if id.IsZero() {
		t.Fatal("non-zero block ID reported zero")
	}
}
