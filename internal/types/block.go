package types

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// BlockID is the SHA-256 digest of a block header. It uniquely identifies a
// block across the cluster.
type BlockID [32]byte

// ZeroBlockID is the all-zero block ID, used as the parent of the genesis
// block.
var ZeroBlockID BlockID

// String returns a short hex prefix of the ID for logs.
func (id BlockID) String() string {
	return hex.EncodeToString(id[:6])
}

// IsZero reports whether the ID is the all-zero sentinel.
func (id BlockID) IsZero() bool { return id == ZeroBlockID }

// Block is a proposal for one round of the protocol. The chain payload is an
// opaque byte string (batched transactions in the SMR examples, a synthetic
// bit vector in the benchmark workloads, mirroring paper section 9.2).
//
// The Rank field is the proposer's rank in the round's leader permutation.
// It is carried in the block for convenience and must be validated against
// the beacon by every receiver.
type Block struct {
	Round Round
	// Epoch is the membership epoch the block was proposed under: the
	// epoch of the validator set in effect at Round. It is part of the
	// hashed header, so a block cannot be replayed under a different
	// epoch's quorum rules; receivers validate it against their own
	// membership history for the round. Genesis and the baseline engines
	// (hotstuff/streamlet/icc) stay at epoch 0 forever.
	Epoch     uint32
	Proposer  ReplicaID
	Rank      Rank
	Parent    BlockID
	Payload   Payload
	Signature []byte // proposer's signature over ID()

	id     BlockID // cached hash
	hashed bool
}

// NewBlock assembles an unsigned block. The signature is attached by the
// proposer via crypto.Signer before broadcast.
func NewBlock(round Round, proposer ReplicaID, rank Rank, parent BlockID, payload Payload) *Block {
	return &Block{
		Round:    round,
		Proposer: proposer,
		Rank:     rank,
		Parent:   parent,
		Payload:  payload,
	}
}

// Genesis returns the canonical genesis block shared by all replicas. It is
// notarized, finalized and unlocked by definition (paper, section 8.1).
func Genesis() *Block {
	return &Block{
		Round:    0,
		Proposer: NoReplica,
		Rank:     0,
		Parent:   ZeroBlockID,
		Payload:  Payload{},
	}
}

// ID returns the block's SHA-256 header digest, computing and caching it on
// first use. The digest covers round, epoch, proposer, rank, parent and the
// payload digest — not the signature, which signs this digest.
//
// Caching contract: blocks are immutable once constructed (NewBlock +
// SignBlock, or wire decode), and the first ID call must happen-before
// any concurrent use of the block. Hosts satisfy this by construction —
// a proposer hashes when signing, and a receiver's preverification stage
// hashes (off the consensus goroutine, with a happens-before edge on the
// hand-off) before the engine sees the block — so the engine, encoder,
// and journal all read a warm cache instead of re-running SHA-256 at
// propose, vote, certify, encode, and journal time.
func (b *Block) ID() BlockID {
	if !b.hashed {
		b.id = b.computeID()
		b.hashed = true
	}
	return b.id
}

func (b *Block) computeID() BlockID {
	// Layout must stay in lockstep with BlockHeader.ID (cert.go): unlock
	// proofs carry bare headers that must re-hash to the same IDs.
	var hdr [8 + 4 + 2 + 2 + 32 + 32]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(b.Round))
	binary.LittleEndian.PutUint32(hdr[8:12], b.Epoch)
	binary.LittleEndian.PutUint16(hdr[12:14], uint16(b.Proposer))
	binary.LittleEndian.PutUint16(hdr[14:16], uint16(b.Rank))
	copy(hdr[16:48], b.Parent[:])
	ph := b.Payload.Digest()
	copy(hdr[48:80], ph[:])
	h := sha256.New()
	h.Write([]byte("banyan/block/v2"))
	h.Write(hdr[:])
	var id BlockID
	h.Sum(id[:0])
	return id
}

// Equal reports whether two blocks have the same identity (header hash).
func (b *Block) Equal(other *Block) bool {
	if b == nil || other == nil {
		return b == other
	}
	return b.ID() == other.ID()
}

func (b *Block) String() string {
	return fmt.Sprintf("block{r=%d e=%d id=%s rank=%d by=%d parent=%s len=%d}",
		b.Round, b.Epoch, b.ID(), b.Rank, b.Proposer, b.Parent, b.Payload.Size())
}

// IsGenesis reports whether the block is the canonical genesis block.
func (b *Block) IsGenesis() bool {
	return b.Round == 0 && b.Parent.IsZero() && b.Proposer == NoReplica
}

// HeaderEqualExceptPayload reports whether two blocks agree on everything
// except the payload — used by equivocation tests.
func (b *Block) HeaderEqualExceptPayload(other *Block) bool {
	return b.Round == other.Round &&
		b.Proposer == other.Proposer &&
		b.Rank == other.Rank &&
		bytes.Equal(b.Parent[:], other.Parent[:])
}
