package types

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodedSizeExact checks EncodedSize equals the encoded length for
// every message kind and payload representation — the property the
// one-allocation encode path and the pooled frame writers rely on.
func TestEncodedSizeExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	msgs := []Message{
		&SyncRequest{From: 3, To: 99},
		&SyncResponse{},
		&SnapshotRequest{Have: 42},
		&SnapshotResponse{},
	}
	for i := 0; i < 200; i++ {
		fv := randomVote(r)
		p := &Proposal{Block: randomBlock(r), Relayed: r.Intn(2) == 0}
		if r.Intn(2) == 0 {
			p.ParentNotarization = randomCert(r)
		}
		if r.Intn(2) == 0 {
			p.ParentUnlock = randomUnlock(r)
		}
		if r.Intn(2) == 0 {
			p.FastVote = &fv
		}
		msgs = append(msgs,
			p,
			&VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}},
			&CertMsg{Cert: randomCert(r)},
			&Advance{Notarization: randomCert(r), Unlock: randomUnlock(r)},
			&NewView{Round: Round(i), Sender: 1, HighQC: randomCert(r), Signature: []byte("sig")},
			&SyncResponse{Blocks: []*Block{randomBlock(r)}, Finalization: randomCert(r)},
			&SnapshotResponse{Chain: []*Block{randomBlock(r)}, Finalization: randomCert(r)},
			&BatchAnnounce{Origin: ReplicaID(i), Digest: [32]byte{byte(i)}, Body: randomBlock(r).Payload},
			&BatchAnnounce{Origin: ReplicaID(i), Digest: [32]byte{byte(i)}}, // availability ack
			&BatchRequest{Digest: [32]byte{byte(i), 7}},
			&BatchResponse{Digest: [32]byte{byte(i)}, Body: randomBlock(r).Payload},
			&Proposal{Block: NewBlock(Round(i), 2, 0, BlockID{9}, randomBatchPayload(r))},
		)
	}
	for _, m := range msgs {
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.EncodedSize(), len(enc); got != want {
			t.Fatalf("%T: EncodedSize %d != encoded length %d", m, got, want)
		}
	}
}

// TestCachedEncodingStable checks the memoized encoding matches a fresh
// encode, survives repeated calls, and is installed by the in-place
// decoder.
func TestCachedEncodingStable(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m := &VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}}
	fresh, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := CachedEncoding(m)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := CachedEncoding(m)
	if !bytes.Equal(fresh, c1) || &c1[0] != &c2[0] {
		t.Fatal("cached encoding not stable or not equal to fresh encode")
	}
	// EncodeMessage and AppendMessage must reuse the cache.
	e, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if &e[0] != &c1[0] {
		t.Fatal("EncodeMessage did not return the cached encoding")
	}
	app, err := AppendMessage(make([]byte, 0, len(c1)), m)
	if err != nil || !bytes.Equal(app, c1) {
		t.Fatalf("AppendMessage mismatch: %v", err)
	}

	// In-place decode retains the input as the cache.
	dec, err := DecodeMessageInPlace(fresh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CachedEncoding(dec)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &fresh[0] {
		t.Fatal("DecodeMessageInPlace did not install the input as cached encoding")
	}
}

// TestDecodeMessageInPlaceAliases checks aliasing mode really is
// zero-copy (slices point into the input) and still round-trips.
func TestDecodeMessageInPlaceAliases(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := &VoteMsg{Votes: []Vote{randomVote(r)}}
	enc := mustEncode(m)
	dec, err := DecodeMessageInPlace(enc)
	if err != nil {
		t.Fatal(err)
	}
	sig := dec.(*VoteMsg).Votes[0].Signature
	if len(sig) == 0 {
		t.Fatal("fixture vote has no signature")
	}
	aliased := false
	for i := range enc {
		if &enc[i] == &sig[0] {
			aliased = true
			break
		}
	}
	if !aliased {
		t.Fatal("decoded signature does not alias the input buffer")
	}
}

// TestAllocRegressionEncode gates the steady-state allocation budget of
// the encode hot path: one exact-size allocation for a fresh encode,
// zero for an append into pre-reserved capacity, zero for a cached
// re-encode. A failure here means the zero-allocation pipeline regressed.
// TestAllocRegressionBareProposal gates the optimistic body broadcast —
// a credential-less rank-0 proposal — the same way: it is sent once per
// round by the pipelining leader and must stay on the one-allocation
// fresh-encode / zero-allocation cached path, with EncodedSize exact.
func TestAllocRegressionBareProposal(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	b := NewBlock(7, 3, 0, BlockID{1, 2, 3}, SyntheticPayload(4096, 99))
	b.Signature = make([]byte, 64)
	r.Read(b.Signature)
	m := &Proposal{Block: b}

	enc, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.EncodedSize(), len(enc); got != want {
		t.Fatalf("EncodedSize %d != encoded length %d", got, want)
	}
	if n := testing.AllocsPerRun(200, func() {
		m.enc = nil // white-box: force a fresh encode each run
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("bare proposal EncodeMessage: %v allocs/op, budget 1", n)
	}
	if _, err := CachedEncoding(m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("bare proposal EncodeMessage with cache: %v allocs/op, budget 0", n)
	}
}

// TestAllocRegressionDecodeInPlace gates the read-path allocation budget:
// the steady-state messages (a proposal with parent credentials, a vote
// bundle) must decode in-place into their single arena allocation instead
// of one allocation per retained sub-object. The fixtures mirror
// bench_test.go's steady-state shapes.
func TestAllocRegressionDecodeInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	b := NewBlock(9, 2, 0, BlockID{4, 5}, BytesPayload(randomBytes(r, 512)))
	b.Signature = randomBytes(r, 64)
	fv := Vote{Kind: VoteFast, Round: 9, Block: b.ID(), Voter: 2, Signature: randomBytes(r, 64)}
	cert := &Certificate{Kind: CertNotarization, Round: 8, Block: b.Parent}
	for i := 0; i < 3; i++ {
		cert.Signers = append(cert.Signers, ReplicaID(i))
		cert.Sigs = append(cert.Sigs, randomBytes(r, 64))
	}
	proposal := mustEncode(&Proposal{Block: b, ParentNotarization: cert, FastVote: &fv})
	votes := mustEncode(&VoteMsg{Votes: []Vote{fv, {Kind: VoteNotarize, Round: 9, Block: b.ID(), Voter: 2, Signature: randomBytes(r, 64)}}})

	// A reconfiguration proposal: the ConfigChange decodes into the arena
	// scratch slot, not a per-message heap object, so it shares the plain
	// proposal's budget.
	rb := NewBlock(9, 2, 1, BlockID{4, 5},
		ConfigChangePayload(ConfigChange{Op: ConfigAdd, Replica: 4, PubKey: randomBytes(r, 32)},
			BytesPayload(randomBytes(r, 512))))
	rb.Signature = randomBytes(r, 64)
	reconfig := mustEncode(&Proposal{Block: rb, ParentNotarization: cert})

	decode := func(data []byte) {
		if _, err := decodeMessage(data, true); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() { decode(proposal) }); n > 2 {
		t.Errorf("decode-inplace proposal: %v allocs/op, budget 2", n)
	}
	if n := testing.AllocsPerRun(200, func() { decode(reconfig) }); n > 2 {
		t.Errorf("decode-inplace reconfig proposal: %v allocs/op, budget 2", n)
	}
	if n := testing.AllocsPerRun(200, func() { decode(votes) }); n > 1 {
		t.Errorf("decode-inplace votemsg: %v allocs/op, budget 1", n)
	}
}

// TestDecodeArenaOverflow checks the arena fallbacks: signer counts and
// vote bundles beyond the fixed arena capacity still decode correctly
// (into heap slices), so the budget optimization cannot change behavior.
func TestDecodeArenaOverflow(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cert := &Certificate{Kind: CertNotarization, Round: 3, Block: BlockID{1}}
	for i := 0; i < arenaSigners+9; i++ {
		cert.Signers = append(cert.Signers, ReplicaID(i))
		cert.Sigs = append(cert.Sigs, randomBytes(r, 16))
	}
	b := NewBlock(4, 1, 1, BlockID{1}, BytesPayload([]byte("tx")))
	b.Signature = randomBytes(r, 64)
	got := roundTrip(t, &Proposal{Block: b, ParentNotarization: cert}).(*Proposal)
	if len(got.ParentNotarization.Signers) != arenaSigners+9 {
		t.Fatalf("overflow cert lost signers: %d", len(got.ParentNotarization.Signers))
	}
	for i, s := range got.ParentNotarization.Signers {
		if s != cert.Signers[i] || !bytes.Equal(got.ParentNotarization.Sigs[i], cert.Sigs[i]) {
			t.Fatalf("overflow cert corrupted signer %d", i)
		}
	}

	vm := &VoteMsg{}
	for i := 0; i < 9; i++ {
		vm.Votes = append(vm.Votes, randomVote(r))
	}
	gotVM := roundTrip(t, vm).(*VoteMsg)
	if len(gotVM.Votes) != len(vm.Votes) {
		t.Fatalf("overflow vote bundle lost votes: %d", len(gotVM.Votes))
	}
	for i := range vm.Votes {
		if gotVM.Votes[i].Digest() != vm.Votes[i].Digest() {
			t.Fatalf("overflow vote %d digest changed", i)
		}
	}
}

func TestAllocRegressionEncode(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	m := &VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}}

	if n := testing.AllocsPerRun(200, func() {
		m.enc = nil // white-box: force a fresh encode each run
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 1 { // exactly the one exact-size output buffer
		t.Errorf("EncodeMessage: %v allocs/op, budget 1", n)
	}

	buf := make([]byte, 0, m.EncodedSize())
	if n := testing.AllocsPerRun(200, func() {
		if _, err := AppendMessage(buf, m); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("AppendMessage into reserved capacity: %v allocs/op, budget 0", n)
	}

	if _, err := CachedEncoding(m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("EncodeMessage with cache: %v allocs/op, budget 0", n)
	}
}
