package types

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodedSizeExact checks EncodedSize equals the encoded length for
// every message kind and payload representation — the property the
// one-allocation encode path and the pooled frame writers rely on.
func TestEncodedSizeExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	msgs := []Message{
		&SyncRequest{From: 3, To: 99},
		&SyncResponse{},
		&SnapshotRequest{Have: 42},
		&SnapshotResponse{},
	}
	for i := 0; i < 200; i++ {
		fv := randomVote(r)
		p := &Proposal{Block: randomBlock(r), Relayed: r.Intn(2) == 0}
		if r.Intn(2) == 0 {
			p.ParentNotarization = randomCert(r)
		}
		if r.Intn(2) == 0 {
			p.ParentUnlock = randomUnlock(r)
		}
		if r.Intn(2) == 0 {
			p.FastVote = &fv
		}
		msgs = append(msgs,
			p,
			&VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}},
			&CertMsg{Cert: randomCert(r)},
			&Advance{Notarization: randomCert(r), Unlock: randomUnlock(r)},
			&NewView{Round: Round(i), Sender: 1, HighQC: randomCert(r), Signature: []byte("sig")},
			&SyncResponse{Blocks: []*Block{randomBlock(r)}, Finalization: randomCert(r)},
			&SnapshotResponse{Chain: []*Block{randomBlock(r)}, Finalization: randomCert(r)},
		)
	}
	for _, m := range msgs {
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.EncodedSize(), len(enc); got != want {
			t.Fatalf("%T: EncodedSize %d != encoded length %d", m, got, want)
		}
	}
}

// TestCachedEncodingStable checks the memoized encoding matches a fresh
// encode, survives repeated calls, and is installed by the in-place
// decoder.
func TestCachedEncodingStable(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m := &VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}}
	fresh, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := CachedEncoding(m)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := CachedEncoding(m)
	if !bytes.Equal(fresh, c1) || &c1[0] != &c2[0] {
		t.Fatal("cached encoding not stable or not equal to fresh encode")
	}
	// EncodeMessage and AppendMessage must reuse the cache.
	e, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if &e[0] != &c1[0] {
		t.Fatal("EncodeMessage did not return the cached encoding")
	}
	app, err := AppendMessage(make([]byte, 0, len(c1)), m)
	if err != nil || !bytes.Equal(app, c1) {
		t.Fatalf("AppendMessage mismatch: %v", err)
	}

	// In-place decode retains the input as the cache.
	dec, err := DecodeMessageInPlace(fresh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CachedEncoding(dec)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &fresh[0] {
		t.Fatal("DecodeMessageInPlace did not install the input as cached encoding")
	}
}

// TestDecodeMessageInPlaceAliases checks aliasing mode really is
// zero-copy (slices point into the input) and still round-trips.
func TestDecodeMessageInPlaceAliases(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := &VoteMsg{Votes: []Vote{randomVote(r)}}
	enc := mustEncode(m)
	dec, err := DecodeMessageInPlace(enc)
	if err != nil {
		t.Fatal(err)
	}
	sig := dec.(*VoteMsg).Votes[0].Signature
	if len(sig) == 0 {
		t.Fatal("fixture vote has no signature")
	}
	aliased := false
	for i := range enc {
		if &enc[i] == &sig[0] {
			aliased = true
			break
		}
	}
	if !aliased {
		t.Fatal("decoded signature does not alias the input buffer")
	}
}

// TestAllocRegressionEncode gates the steady-state allocation budget of
// the encode hot path: one exact-size allocation for a fresh encode,
// zero for an append into pre-reserved capacity, zero for a cached
// re-encode. A failure here means the zero-allocation pipeline regressed.
// TestAllocRegressionBareProposal gates the optimistic body broadcast —
// a credential-less rank-0 proposal — the same way: it is sent once per
// round by the pipelining leader and must stay on the one-allocation
// fresh-encode / zero-allocation cached path, with EncodedSize exact.
func TestAllocRegressionBareProposal(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	b := NewBlock(7, 3, 0, BlockID{1, 2, 3}, SyntheticPayload(4096, 99))
	b.Signature = make([]byte, 64)
	r.Read(b.Signature)
	m := &Proposal{Block: b}

	enc, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.EncodedSize(), len(enc); got != want {
		t.Fatalf("EncodedSize %d != encoded length %d", got, want)
	}
	if n := testing.AllocsPerRun(200, func() {
		m.enc = nil // white-box: force a fresh encode each run
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("bare proposal EncodeMessage: %v allocs/op, budget 1", n)
	}
	if _, err := CachedEncoding(m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("bare proposal EncodeMessage with cache: %v allocs/op, budget 0", n)
	}
}

func TestAllocRegressionEncode(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	m := &VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}}

	if n := testing.AllocsPerRun(200, func() {
		m.enc = nil // white-box: force a fresh encode each run
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 1 { // exactly the one exact-size output buffer
		t.Errorf("EncodeMessage: %v allocs/op, budget 1", n)
	}

	buf := make([]byte, 0, m.EncodedSize())
	if n := testing.AllocsPerRun(200, func() {
		if _, err := AppendMessage(buf, m); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("AppendMessage into reserved capacity: %v allocs/op, budget 0", n)
	}

	if _, err := CachedEncoding(m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := EncodeMessage(m); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("EncodeMessage with cache: %v allocs/op, budget 0", n)
	}
}
