package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// VoteKind distinguishes the three vote flavours of the Banyan protocol.
// Baseline protocols reuse the same structure (HotStuff votes are
// VoteNotarize on that engine's blocks, etc.).
type VoteKind uint8

const (
	// VoteNotarize is a notarization vote: the voter validated the block
	// (paper section 4, "Notarization").
	VoteNotarize VoteKind = iota + 1
	// VoteFinalize is a finalization vote: the voter notarization-voted for
	// no other block in the round (paper section 4, "Finalization").
	VoteFinalize
	// VoteFast is a Banyan fast vote: cast for the first block the voter
	// notarization-votes for in a round (Definition 6.2).
	VoteFast
)

func (k VoteKind) String() string {
	switch k {
	case VoteNotarize:
		return "notarize"
	case VoteFinalize:
		return "finalize"
	case VoteFast:
		return "fast"
	default:
		return fmt.Sprintf("VoteKind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined vote kind.
func (k VoteKind) Valid() bool { return k >= VoteNotarize && k <= VoteFast }

// Vote is one replica's signed statement about a block in a round.
type Vote struct {
	Kind      VoteKind
	Round     Round
	Block     BlockID
	Voter     ReplicaID
	Signature []byte
}

// VoteDigest is the message digest a voter signs. It covers kind, round and
// block; the voter's identity is bound by its signing key, so it is not part
// of the digest. This keeps all votes of one certificate on a shared digest,
// which is what makes signature aggregation possible.
func VoteDigest(kind VoteKind, round Round, block BlockID) [32]byte {
	var buf [1 + 8 + 32]byte
	buf[0] = byte(kind)
	binary.LittleEndian.PutUint64(buf[1:9], uint64(round))
	copy(buf[9:41], block[:])
	h := sha256.New()
	h.Write([]byte("banyan/vote/v1"))
	h.Write(buf[:])
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// Digest returns the digest this vote's signature covers.
func (v Vote) Digest() [32]byte { return VoteDigest(v.Kind, v.Round, v.Block) }

func (v Vote) String() string {
	return fmt.Sprintf("%s-vote{r=%d b=%s by=%d}", v.Kind, v.Round, v.Block, v.Voter)
}
