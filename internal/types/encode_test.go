package types

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomVote builds an arbitrary vote from a fuzz source.
func randomVote(r *rand.Rand) Vote {
	v := Vote{
		Kind:  VoteKind(r.Intn(3) + 1),
		Round: Round(r.Uint64() >> 16),
		Voter: ReplicaID(r.Intn(1 << 16)),
	}
	r.Read(v.Block[:])
	if n := r.Intn(80); n > 0 {
		v.Signature = make([]byte, n)
		r.Read(v.Signature)
	}
	return v
}

func randomBlock(r *rand.Rand) *Block {
	b := &Block{
		Round:    Round(r.Uint64() >> 16),
		Epoch:    uint32(r.Intn(8)),
		Proposer: ReplicaID(r.Intn(1 << 15)),
		Rank:     Rank(r.Intn(1 << 15)),
	}
	r.Read(b.Parent[:])
	switch r.Intn(4) {
	case 0: // concrete payload
		data := make([]byte, r.Intn(512)+1)
		r.Read(data)
		b.Payload = BytesPayload(data)
	case 1: // synthetic payload
		b.Payload = SyntheticPayload(r.Intn(1<<20)+1, r.Uint64())
	case 2: // digest-list payload
		b.Payload = randomBatchPayload(r)
	default: // empty
	}
	b.Signature = make([]byte, 64)
	r.Read(b.Signature)
	return b
}

func randomCert(r *rand.Rand) *Certificate {
	c := &Certificate{
		Kind:  CertKind(r.Intn(3) + 1),
		Round: Round(r.Uint64() >> 16),
	}
	r.Read(c.Block[:])
	n := r.Intn(20) + 1
	for i := 0; i < n; i++ {
		c.Signers = append(c.Signers, ReplicaID(i*3+r.Intn(2)))
		sig := make([]byte, 32)
		r.Read(sig)
		c.Sigs = append(c.Sigs, sig)
	}
	return c
}

func randomUnlock(r *rand.Rand) *UnlockProof {
	u := &UnlockProof{
		Round: Round(r.Uint64() >> 16),
		All:   r.Intn(2) == 0,
	}
	r.Read(u.Block[:])
	for i := 0; i < r.Intn(4); i++ {
		e := UnlockEntry{Header: BlockHeader{
			Round:    u.Round,
			Proposer: ReplicaID(r.Intn(64)),
			Rank:     Rank(r.Intn(8)),
		}}
		r.Read(e.Header.Parent[:])
		r.Read(e.Header.PayloadDigest[:])
		for j := 0; j < r.Intn(5)+1; j++ {
			e.Voters = append(e.Voters, ReplicaID(j*2))
			sig := make([]byte, 32)
			r.Read(sig)
			e.Sigs = append(e.Sigs, sig)
		}
		u.Entries = append(u.Entries, e)
	}
	return u
}

// randomBatchPayload builds a digest-list payload: 1-6 batch refs plus an
// optional inline tail.
func randomBatchPayload(r *rand.Rand) Payload {
	refs := make([]BatchRef, r.Intn(6)+1)
	for i := range refs {
		r.Read(refs[i].Digest[:])
		refs[i].Size = uint32(r.Intn(1<<20) + 1)
	}
	var inline []byte
	if r.Intn(2) == 0 {
		inline = randomBytes(r, r.Intn(128)+1)
	}
	return BatchPayload(refs, inline)
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	enc, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeMessage(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return dec
}

func TestProposalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		fv := randomVote(r)
		p := &Proposal{
			Block:   randomBlock(r),
			Relayed: r.Intn(2) == 0,
		}
		if r.Intn(2) == 0 {
			p.ParentNotarization = randomCert(r)
		}
		if r.Intn(2) == 0 {
			p.ParentUnlock = randomUnlock(r)
		}
		if r.Intn(2) == 0 {
			p.FastVote = &fv
		}
		got := roundTrip(t, p).(*Proposal)
		if got.Block.ID() != p.Block.ID() {
			t.Fatalf("block identity changed: %v vs %v", got.Block, p.Block)
		}
		if !reflect.DeepEqual(normalizeProposal(got), normalizeProposal(p)) {
			t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got, p)
		}
	}
}

// TestOptimisticProposalShapes pins the two wire shapes the optimistic
// proposal pipeline adds: the credential-less rank-0 body broadcast
// (no fast vote, no parent credentials — nothing but the block), and a
// relayed rank-0 proposal carrying the proposer's fast vote (relays
// forward that vote so replicas the original broadcast missed can still
// validate). Both must round-trip exactly and survive mutation fuzzing.
func TestOptimisticProposalShapes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	block := func() *Block {
		var parent BlockID
		r.Read(parent[:])
		b := NewBlock(Round(r.Uint64()>>17)+2, ReplicaID(r.Intn(64)), 0,
			parent, BytesPayload(randomBytes(r, 64)))
		b.Signature = randomBytes(r, 64)
		return b
	}
	for i := 0; i < 100; i++ {
		bare := &Proposal{Block: block()}
		got := roundTrip(t, bare).(*Proposal)
		if got.Block.ID() != bare.Block.ID() {
			t.Fatal("bare optimistic proposal changed block identity")
		}
		if got.FastVote != nil || got.ParentNotarization != nil || got.ParentUnlock != nil || got.Relayed {
			t.Fatalf("bare optimistic proposal grew fields in transit: %#v", got)
		}

		b := block()
		fv := Vote{Kind: VoteFast, Round: b.Round, Block: b.ID(),
			Voter: b.Proposer, Signature: randomBytes(r, 64)}
		relay := &Proposal{Block: b, FastVote: &fv, Relayed: true}
		rt := roundTrip(t, relay).(*Proposal)
		if !rt.Relayed || rt.FastVote == nil || rt.FastVote.Digest() != fv.Digest() {
			t.Fatalf("relayed proposal lost the proposer fast vote: %#v", rt)
		}
	}

	// Mutation fuzz over the bare encoding: a flipped bit must never panic
	// the decoder or produce a message that still verifies as the original.
	valid := mustEncode(&Proposal{Block: block()})
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), valid...)
		data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		_, _ = DecodeMessage(data)
	}
}

func randomBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// normalizeProposal strips unexported cache fields for comparison.
func normalizeProposal(p *Proposal) *Proposal {
	cp := *p
	b := *p.Block
	b.ID() // force hash so both sides cache
	cp.Block = &b
	return &cp
}

func TestVoteMsgRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m := &VoteMsg{}
		for j := 0; j < r.Intn(3)+1; j++ {
			m.Votes = append(m.Votes, randomVote(r))
		}
		got := roundTrip(t, m).(*VoteMsg)
		if len(got.Votes) != len(m.Votes) {
			t.Fatalf("vote count %d != %d", len(got.Votes), len(m.Votes))
		}
		for j := range m.Votes {
			if got.Votes[j].Digest() != m.Votes[j].Digest() {
				t.Fatalf("vote %d digest changed", j)
			}
			if !bytes.Equal(got.Votes[j].Signature, m.Votes[j].Signature) {
				t.Fatalf("vote %d signature changed", j)
			}
		}
	}
}

func TestCertMsgRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m := &CertMsg{Cert: randomCert(r)}
		got := roundTrip(t, m).(*CertMsg)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got.Cert, m.Cert)
		}
	}
}

func TestAdvanceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		m := &Advance{}
		if r.Intn(4) > 0 {
			m.Notarization = randomCert(r)
		}
		if r.Intn(4) > 0 {
			m.Unlock = randomUnlock(r)
		}
		got := roundTrip(t, m).(*Advance)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got, m)
		}
	}
}

func TestNewViewRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		m := &NewView{
			Round:  Round(r.Uint64() >> 16),
			Sender: ReplicaID(r.Intn(1 << 15)),
		}
		if r.Intn(2) == 0 {
			m.HighQC = randomCert(r)
		}
		m.Signature = make([]byte, 64)
		r.Read(m.Signature)
		got := roundTrip(t, m).(*NewView)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got, m)
		}
	}
}

// TestWireSizeMatchesEncoding checks WireSize equals the encoded length
// for concrete (non-synthetic) payloads — the property the bandwidth model
// relies on.
func TestWireSizeMatchesEncoding(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		var m Message
		switch r.Intn(5) {
		case 0:
			b := randomBlock(r)
			if b.Payload.IsSynthetic() {
				b.Payload = BytesPayload(b.Payload.Materialize())
			}
			fv := randomVote(r)
			m = &Proposal{Block: b, ParentNotarization: randomCert(r), FastVote: &fv}
		case 1:
			m = &VoteMsg{Votes: []Vote{randomVote(r), randomVote(r)}}
		case 2:
			m = &CertMsg{Cert: randomCert(r)}
		case 3:
			m = &Advance{Notarization: randomCert(r), Unlock: randomUnlock(r)}
		default:
			m = &NewView{Round: 9, Sender: 3, HighQC: randomCert(r), Signature: []byte("sig")}
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if m.WireSize() != len(enc) {
			t.Fatalf("%T: WireSize %d != encoded %d", m, m.WireSize(), len(enc))
		}
	}
}

// TestSyntheticWireSizeCharged checks synthetic payloads are charged at
// their logical size even though their encoding is a small descriptor.
func TestSyntheticWireSizeCharged(t *testing.T) {
	small := NewBlock(1, 0, 0, BlockID{}, SyntheticPayload(1<<20, 7))
	big := NewBlock(1, 0, 0, BlockID{}, SyntheticPayload(2<<20, 7))
	ps, pb := (&Proposal{Block: small}).WireSize(), (&Proposal{Block: big}).WireSize()
	if pb-ps != 1<<20 {
		t.Fatalf("synthetic payload size not charged: %d vs %d", ps, pb)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{99}},
		{"truncated proposal", []byte{byte(MsgProposal), 1, 1}},
		{"truncated vote", []byte{byte(MsgVote), 2, 0}},
		{"trailing garbage", append(mustEncode(&CertMsg{}), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeMessage(tt.data); err == nil {
				t.Error("expected decode error")
			}
		})
	}
}

// TestDecodeFuzz feeds random bytes into the decoder: it must never panic
// and never allocate absurd amounts.
func TestDecodeFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, r.Intn(200))
		r.Read(data)
		_, _ = DecodeMessage(data) // must not panic
	}
	// Mutate valid encodings.
	valid := mustEncode(&Proposal{Block: NewBlock(3, 1, 1, BlockID{}, BytesPayload([]byte("xyz")))})
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), valid...)
		data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		_, _ = DecodeMessage(data)
	}
}

// TestHugeLengthPrefixRejected checks a hostile length prefix cannot force
// a giant allocation.
func TestHugeLengthPrefixRejected(t *testing.T) {
	e := &encoder{}
	e.u8(uint8(MsgVote))
	e.u16(1)
	e.u8(uint8(VoteNotarize))
	e.u64(1)
	e.id(BlockID{})
	e.u16(0)
	e.u32(0xFFFFFFFF) // absurd signature length
	if _, err := DecodeMessage(e.buf); err == nil {
		t.Fatal("expected error for huge length prefix")
	}
}

func mustEncode(m Message) []byte {
	b, err := EncodeMessage(m)
	if err != nil {
		panic(err)
	}
	return b
}

// TestNilEmptyPayloadIdentity is the regression test for the TCP bug where
// an empty payload changed identity across the wire: all empty payload
// representations must share one digest, and decoding must preserve it.
func TestNilEmptyPayloadIdentity(t *testing.T) {
	a := Payload{}
	b := Payload{Data: []byte{}}
	c := SyntheticPayload(0, 0)
	if a.Digest() != b.Digest() || b.Digest() != c.Digest() {
		t.Fatal("empty payload representations disagree on digest")
	}
	blk := NewBlock(5, 2, 1, BlockID{}, Payload{})
	blk.Signature = []byte("s")
	got := roundTrip(t, &Proposal{Block: blk}).(*Proposal)
	if got.Block.ID() != blk.ID() {
		t.Fatal("empty-payload block changed identity over the wire")
	}
}

// TestQuickVoteDigest checks digest injectivity over vote fields with
// testing/quick: distinct (kind, round, block) never collide.
func TestQuickVoteDigest(t *testing.T) {
	f := func(r1, r2 uint32, b1, b2 [32]byte, k1, k2 uint8) bool {
		kind1 := VoteKind(k1%3 + 1)
		kind2 := VoteKind(k2%3 + 1)
		d1 := VoteDigest(kind1, Round(r1), BlockID(b1))
		d2 := VoteDigest(kind2, Round(r2), BlockID(b2))
		same := kind1 == kind2 && r1 == r2 && b1 == b2
		return same == (d1 == d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeaderID checks header hashing matches block hashing for all
// field combinations.
func TestQuickHeaderID(t *testing.T) {
	f := func(round uint32, proposer, rank uint16, parent [32]byte, data []byte) bool {
		b := NewBlock(Round(round), ReplicaID(proposer), Rank(rank), BlockID(parent), BytesPayload(data))
		return b.Header().ID() == b.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSyncMessagesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		req := &SyncRequest{From: Round(r.Uint64() >> 16), To: Round(r.Uint64() >> 16)}
		got := roundTrip(t, req).(*SyncRequest)
		if *got != *req {
			t.Fatalf("sync request mismatch: %+v vs %+v", got, req)
		}

		resp := &SyncResponse{}
		for j := 0; j < r.Intn(4); j++ {
			b := randomBlock(r)
			resp.Blocks = append(resp.Blocks, b)
		}
		if r.Intn(2) == 0 {
			resp.Finalization = randomCert(r)
		}
		gotResp := roundTrip(t, resp).(*SyncResponse)
		if len(gotResp.Blocks) != len(resp.Blocks) {
			t.Fatalf("block count %d vs %d", len(gotResp.Blocks), len(resp.Blocks))
		}
		for j := range resp.Blocks {
			if gotResp.Blocks[j].ID() != resp.Blocks[j].ID() {
				t.Fatalf("block %d identity changed", j)
			}
		}
		if !reflect.DeepEqual(gotResp.Finalization, resp.Finalization) {
			t.Fatal("finalization certificate changed")
		}
	}
}

func TestSyncResponseBlockLimitEnforced(t *testing.T) {
	// The decoder bound must match the MaxSyncBlocks limit onSyncResponse
	// enforces: exactly MaxSyncBlocks decodes, one more is rejected.
	mk := func(n int) []byte {
		resp := &SyncResponse{}
		for i := 0; i < n; i++ {
			resp.Blocks = append(resp.Blocks, NewBlock(Round(i+1), 0, 0, BlockID{}, Payload{}))
		}
		enc, err := EncodeMessage(resp)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	if _, err := DecodeMessage(mk(MaxSyncBlocks)); err != nil {
		t.Fatalf("full sync response rejected: %v", err)
	}
	if _, err := DecodeMessage(mk(MaxSyncBlocks + 1)); err == nil {
		t.Fatal("oversized sync response decoded")
	}
}

func TestSnapshotMessagesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		req := &SnapshotRequest{Have: Round(r.Uint64() >> 16)}
		got := roundTrip(t, req).(*SnapshotRequest)
		if *got != *req {
			t.Fatalf("snapshot request mismatch: %+v vs %+v", got, req)
		}

		resp := &SnapshotResponse{Finalization: randomCert(r)}
		for j := 0; j < r.Intn(4); j++ {
			resp.Chain = append(resp.Chain, randomBlock(r))
		}
		gotResp := roundTrip(t, resp).(*SnapshotResponse)
		if len(gotResp.Chain) != len(resp.Chain) {
			t.Fatalf("chain length %d vs %d", len(gotResp.Chain), len(resp.Chain))
		}
		for j := range resp.Chain {
			if gotResp.Chain[j].ID() != resp.Chain[j].ID() {
				t.Fatalf("block %d identity changed", j)
			}
		}
		if !reflect.DeepEqual(gotResp.Finalization, resp.Finalization) {
			t.Fatal("finalization certificate changed")
		}
	}
}

// TestBatchMessagesRoundTrip covers the dissemination wire messages:
// bodies (concrete and synthetic), availability acks, and requests must
// survive the codec exactly, and a digest-list payload's block identity
// must be stable across the wire.
func TestBatchMessagesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		ann := &BatchAnnounce{Origin: ReplicaID(r.Intn(64))}
		r.Read(ann.Digest[:])
		switch r.Intn(3) {
		case 0:
			ann.Body = BytesPayload(randomBytes(r, r.Intn(4096)+1))
		case 1:
			ann.Body = SyntheticPayload(r.Intn(1<<22)+1, r.Uint64())
		default: // empty body: availability ack
		}
		got := roundTrip(t, ann).(*BatchAnnounce)
		if got.Origin != ann.Origin || got.Digest != ann.Digest {
			t.Fatalf("announce header changed: %+v vs %+v", got, ann)
		}
		if got.Body.Digest() != ann.Body.Digest() || got.IsAck() != ann.IsAck() {
			t.Fatal("announce body changed in transit")
		}

		req := &BatchRequest{}
		r.Read(req.Digest[:])
		if gotReq := roundTrip(t, req).(*BatchRequest); *gotReq != *req {
			t.Fatalf("request mismatch: %+v vs %+v", gotReq, req)
		}

		resp := &BatchResponse{Body: BytesPayload(randomBytes(r, r.Intn(2048)+1))}
		r.Read(resp.Digest[:])
		gotResp := roundTrip(t, resp).(*BatchResponse)
		if gotResp.Digest != resp.Digest || gotResp.Body.Digest() != resp.Body.Digest() {
			t.Fatal("response changed in transit")
		}
	}
}

// TestBatchPayloadIdentity pins the digest-list payload semantics: the
// digest commits ref order, ref sizes, and the inline tail; Size reports
// the logical bytes; and the proposal wire size is independent of the
// referenced body sizes (the decoupling this layer exists for).
func TestBatchPayloadIdentity(t *testing.T) {
	refs := []BatchRef{{Digest: [32]byte{1}, Size: 1 << 20}, {Digest: [32]byte{2}, Size: 512}}
	p := BatchPayload(refs, []byte("tail"))
	if got, want := p.Size(), 1<<20+512+4; got != want {
		t.Fatalf("Size %d, want %d", got, want)
	}
	swapped := BatchPayload([]BatchRef{refs[1], refs[0]}, []byte("tail"))
	if p.Digest() == swapped.Digest() {
		t.Fatal("digest ignores ref order")
	}
	resized := BatchPayload([]BatchRef{{Digest: refs[0].Digest, Size: 99}, refs[1]}, []byte("tail"))
	if p.Digest() == resized.Digest() {
		t.Fatal("digest ignores ref size")
	}
	noTail := BatchPayload(refs, nil)
	if p.Digest() == noTail.Digest() {
		t.Fatal("digest ignores inline tail")
	}
	plain := BytesPayload([]byte("tail"))
	if p.Digest() == plain.Digest() {
		t.Fatal("digest-list payload collides with plain payload")
	}

	small := &Proposal{Block: NewBlock(1, 0, 0, BlockID{}, BatchPayload([]BatchRef{{Size: 64 << 10}}, nil))}
	big := &Proposal{Block: NewBlock(1, 0, 0, BlockID{}, BatchPayload([]BatchRef{{Size: 4 << 20}}, nil))}
	if small.WireSize() != big.WireSize() {
		t.Fatalf("proposal wire size depends on referenced body size: %d vs %d", small.WireSize(), big.WireSize())
	}
	if enc := mustEncode(big); len(enc) != big.WireSize() {
		t.Fatalf("batch proposal WireSize %d != encoded %d", big.WireSize(), len(enc))
	}

	blk := NewBlock(5, 2, 1, BlockID{}, p)
	blk.Signature = []byte("s")
	got := roundTrip(t, &Proposal{Block: blk}).(*Proposal)
	if got.Block.ID() != blk.ID() {
		t.Fatal("digest-list block changed identity over the wire")
	}
	if !reflect.DeepEqual(got.Block.Payload.Batches, refs) {
		t.Fatalf("refs changed: %+v", got.Block.Payload.Batches)
	}
}

// TestBatchRefLimitEnforced checks a hostile ref count dies in the
// decoder.
func TestBatchRefLimitEnforced(t *testing.T) {
	e := &encoder{}
	e.u8(uint8(MsgBatchResponse))
	e.hash([32]byte{})
	e.u8(2)                 // digest-list payload tag
	e.u32(MaxBatchRefs + 1) // absurd ref count
	if _, err := DecodeMessage(e.buf); err == nil {
		t.Fatal("expected error for huge batch ref count")
	}
}

func TestSnapshotResponseBlockLimitEnforced(t *testing.T) {
	resp := &SnapshotResponse{}
	for i := 0; i < MaxSnapshotBlocks+1; i++ {
		resp.Chain = append(resp.Chain, NewBlock(Round(i+1), 0, 0, BlockID{}, Payload{}))
	}
	enc, err := EncodeMessage(resp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(enc); err == nil {
		t.Fatal("oversized snapshot response decoded")
	}
}
