package icc

import (
	"testing"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

type rig struct {
	t       *testing.T
	params  types.Params
	keyring *crypto.Keyring
	signers []*crypto.Signer
	beacon  beacon.Beacon
	eng     *Engine
	now     time.Time
	acts    []protocol.Action
}

const rigDelta = 10 * time.Millisecond

func newRig(t *testing.T, params types.Params, self types.ReplicaID) *rig {
	t.Helper()
	keyring, signers := crypto.GenerateCluster(crypto.HMAC(), params.N, 7)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Params:  params,
		Self:    self,
		Keyring: keyring,
		Signer:  signers[self],
		Beacon:  bc,
		Delta:   rigDelta,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		t: t, params: params, keyring: keyring, signers: signers,
		beacon: bc, eng: eng, now: time.Unix(0, 0),
	}
	r.acts = eng.Start(r.now)
	return r
}

func (r *rig) deliver(from types.ReplicaID, msg types.Message) {
	r.t.Helper()
	r.acts = append(r.acts, r.eng.HandleMessage(from, msg, r.now)...)
}

func (r *rig) leaderBlock(round types.Round, parent types.BlockID, tag byte) *types.Block {
	r.t.Helper()
	leader := beacon.Leader(r.beacon, round)
	b := types.NewBlock(round, leader, 0, parent, types.BytesPayload([]byte{tag}))
	if err := r.signers[leader].SignBlock(b); err != nil {
		r.t.Fatal(err)
	}
	return b
}

func (r *rig) vote(kind types.VoteKind, voter types.ReplicaID, b *types.Block) types.Vote {
	return r.signers[voter].SignVote(kind, b.Round, b.ID())
}

func (r *rig) commits() []protocol.Commit {
	var out []protocol.Commit
	for _, a := range r.acts {
		if c, ok := a.(protocol.Commit); ok {
			out = append(out, c)
		}
	}
	return out
}

func broadcasts[T types.Message](r *rig) []T {
	var out []T
	for _, a := range r.acts {
		if b, ok := a.(protocol.Broadcast); ok {
			if m, ok := b.Msg.(T); ok {
				out = append(out, m)
			}
		}
	}
	return out
}

var p41 = types.Params{N: 4, F: 1}

// TestFigure3Walkthrough replays Figure 3's scripted round (n=4, f=1) at
// one replica and asserts the event order the figure shows: NV broadcast
// on the rank-0 proposal, notarization N after n-f NVs, finalization vote
// FV on round advance, and finalization F + output after n-f FVs.
func TestFigure3Walkthrough(t *testing.T) {
	bc, _ := beacon.NewRoundRobin(4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p41, observer)

	// Step 1: the rank-0 block of round k arrives; the replica sends a
	// notarization vote (NV).
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, &types.Proposal{Block: b})
	var nvs int
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Kind == types.VoteNotarize && v.Block == b.ID() {
				nvs++
			}
		}
	}
	if nvs != 1 {
		t.Fatalf("NV broadcast %d times, want 1", nvs)
	}
	if r.eng.Round() != 1 {
		t.Fatal("advanced before notarization")
	}

	// Step 2: two more NVs arrive; with the replica's own that is
	// n-f = 3 -> the block is notarized (N), the replica advances and
	// broadcasts a finalization vote (FV) since it voted only for b.
	peer1, peer2 := bc.ReplicaAt(1, 1), bc.ReplicaAt(1, 2)
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteNotarize, peer1, b)}})
	if r.eng.Round() != 1 {
		t.Fatal("advanced with only 2 notarization votes")
	}
	r.clearActs()
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteNotarize, peer2, b)}})
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d after notarization, want 2", r.eng.Round())
	}
	advs := broadcasts[*types.Advance](r)
	if len(advs) != 1 || advs[0].Notarization == nil || advs[0].Notarization.Block != b.ID() {
		t.Fatalf("notarization broadcast missing: %v", advs)
	}
	var fvs int
	for _, vm := range broadcasts[*types.VoteMsg](r) {
		for _, v := range vm.Votes {
			if v.Kind == types.VoteFinalize && v.Block == b.ID() {
				fvs++
			}
		}
	}
	if fvs != 1 {
		t.Fatalf("FV broadcast %d times, want 1", fvs)
	}
	if len(r.commits()) != 0 {
		t.Fatal("committed before finalization quorum")
	}

	// Step 3: two more FVs arrive; with the replica's own that is n-f ->
	// finalization (F), the block commits and the certificate is
	// broadcast.
	r.clearActs()
	r.deliver(peer1, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteFinalize, peer1, b)}})
	r.deliver(peer2, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteFinalize, peer2, b)}})
	commits := r.commits()
	if len(commits) != 1 || commits[0].Explicit != protocol.FinalizeSlow {
		t.Fatalf("commits = %v", commits)
	}
	if len(commits[0].Blocks) != 1 || !commits[0].Blocks[0].Equal(b) {
		t.Fatal("wrong chain committed")
	}
	var finals int
	for _, c := range broadcasts[*types.CertMsg](r) {
		if c.Cert.Kind == types.CertFinalization && c.Cert.Block == b.ID() {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("finalization broadcast %d times, want 1", finals)
	}
}

func (r *rig) clearActs() { r.acts = nil }

// TestImplicitFinalization: rounds without explicit finalization are
// implicitly finalized by a later round's explicit finalization.
func TestImplicitFinalization(t *testing.T) {
	bc, _ := beacon.NewRoundRobin(4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p41, observer)
	genesis := types.Genesis().ID()

	// Round 1 notarizes (the replica advances) but nobody finalizes it.
	b1 := r.leaderBlock(1, genesis, 1)
	r.deliver(b1.Proposer, &types.Proposal{Block: b1})
	for _, rank := range []types.Rank{1, 2} {
		peer := bc.ReplicaAt(1, rank)
		r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteNotarize, peer, b1)}})
	}
	if r.eng.Round() != 2 {
		t.Fatalf("round = %d, want 2", r.eng.Round())
	}

	// Round 2 block extends b1; it notarizes and SP-finalizes.
	b2 := r.leaderBlock(2, b1.ID(), 2)
	r.deliver(b2.Proposer, &types.Proposal{Block: b2})
	for _, rank := range []types.Rank{1, 2} {
		peer := bc.ReplicaAt(2, rank)
		if peer == r.eng.ID() {
			peer = bc.ReplicaAt(2, 3)
		}
		r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteNotarize, peer, b2)}})
	}
	r.clearActs()
	count := 0
	for peer := types.ReplicaID(0); int(peer) < 4 && count < 2; peer++ {
		if peer == r.eng.ID() {
			continue
		}
		r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteFinalize, peer, b2)}})
		count++
	}
	commits := r.commits()
	if len(commits) != 1 {
		t.Fatalf("commits = %v", commits)
	}
	if len(commits[0].Blocks) != 2 {
		t.Fatalf("implicit finalization: committed %d blocks, want 2 (b1 then b2)", len(commits[0].Blocks))
	}
	if !commits[0].Blocks[0].Equal(b1) || !commits[0].Blocks[1].Equal(b2) {
		t.Fatal("chain order wrong")
	}
}

// TestICCIgnoresFastVotes: fast votes are a Banyan concept; the ICC engine
// must ignore them without counting rejections.
func TestICCIgnoresFastVotes(t *testing.T) {
	bc, _ := beacon.NewRoundRobin(4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p41, observer)
	b := r.leaderBlock(1, types.Genesis().ID(), 1)
	r.deliver(b.Proposer, &types.Proposal{Block: b})
	peer := bc.ReplicaAt(1, 1)
	r.deliver(peer, &types.VoteMsg{Votes: []types.Vote{r.vote(types.VoteFast, peer, b)}})
	if got := r.eng.Metrics()["rejected"]; got != 0 {
		t.Fatalf("rejected = %d, want 0", got)
	}
	if r.eng.Round() != 1 {
		t.Fatal("fast votes must not advance an ICC round")
	}
}

// TestICCValidityGatesOnNotarizedParent: a round-2 block is pending until
// its parent is known notarized.
func TestICCValidityGatesOnNotarizedParent(t *testing.T) {
	bc, _ := beacon.NewRoundRobin(4)
	observer := bc.ReplicaAt(1, 3)
	r := newRig(t, p41, observer)
	b1 := r.leaderBlock(1, types.Genesis().ID(), 1)
	b2 := r.leaderBlock(2, b1.ID(), 2)
	r.deliver(b2.Proposer, &types.Proposal{Block: b2})
	if r.eng.getRound(2).valid[b2.ID()] {
		t.Fatal("round-2 block validated without parent notarization")
	}
	var votes []types.Vote
	for _, peer := range []types.ReplicaID{0, 1, 2} {
		votes = append(votes, r.vote(types.VoteNotarize, peer, b1))
	}
	cert, err := types.NewCertificate(types.CertNotarization, 1, b1.ID(), votes)
	if err != nil {
		t.Fatal(err)
	}
	r.deliver(b2.Proposer, &types.Proposal{Block: b2, ParentNotarization: cert, Relayed: true})
	if !r.eng.getRound(2).valid[b2.ID()] {
		t.Fatal("round-2 block not validated after parent notarization arrived")
	}
}
