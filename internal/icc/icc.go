// Package icc implements the Internet Computer Consensus protocol (the
// Banyan paper's section 4, after Camenisch et al., PODC 2022) as an
// independent baseline engine.
//
// ICC is Banyan's slow path on its own: rounds proceed by rank-delayed
// block proposals, blocks are notarized with n−f notarization votes, a
// replica that notarization-voted for exactly one block in a round follows
// up with a finalization vote, and n−f finalization votes explicitly
// finalize a block — implicitly finalizing all its ancestors. Finalization
// therefore takes three communication steps (Remark 4.1): proposal,
// notarization votes, finalization votes.
//
// The engine structure deliberately parallels internal/core so that
// latency differences measured between the two protocols come from the
// protocol rules, not the implementation (the "treat all protocols
// equally" requirement of paper section 9.1).
package icc

import (
	"errors"
	"fmt"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/blocktree"
	"banyan/internal/crypto"
	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Config assembles everything an ICC engine instance needs.
type Config struct {
	// Params carries n and f (ICC ignores p and uses n−f quorums).
	Params types.Params
	// Self is this replica's ID.
	Self types.ReplicaID
	// Keyring holds every replica's public key.
	Keyring *crypto.Keyring
	// Signer signs this replica's blocks and votes.
	Signer *crypto.Signer
	// Beacon supplies per-round leader permutations.
	Beacon beacon.Beacon
	// Payloads supplies block payloads when this replica proposes.
	Payloads protocol.PayloadSource
	// Delta is the message-delay bound Δ; proposal and notarization delays
	// are 2Δ·rank.
	Delta time.Duration
	// DisableForwarding turns off the tip-forwarding relay (see
	// core.Config.DisableForwarding).
	DisableForwarding bool
	// PruneInterval / PruneKeep bound retained state, as in core.Config.
	PruneInterval types.Round
	PruneKeep     types.Round
}

func (c *Config) validate() error {
	if c.Params.N < 3*c.Params.F+1 {
		return fmt.Errorf("icc: n = %d below 3f+1 for f = %d", c.Params.N, c.Params.F)
	}
	if c.Keyring == nil || c.Signer == nil {
		return errors.New("icc: keyring and signer are required")
	}
	if c.Beacon == nil || c.Beacon.N() != c.Params.N {
		return errors.New("icc: beacon must permute exactly n replicas")
	}
	if int(c.Self) >= c.Params.N {
		return fmt.Errorf("icc: self id %d out of range (n=%d)", c.Self, c.Params.N)
	}
	if c.Delta <= 0 {
		return errors.New("icc: Delta must be positive")
	}
	if c.Payloads == nil {
		c.Payloads = protocol.EmptyPayloads
	}
	if c.PruneInterval == 0 {
		c.PruneInterval = 64
	}
	if c.PruneKeep == 0 {
		c.PruneKeep = 16
	}
	return nil
}

// quorum is ICC's n−f threshold for notarizations and finalizations.
func (c *Config) quorum() int { return c.Params.ICCQuorum() }

type roundState struct {
	started bool
	t0      time.Time

	proposed   bool
	advanced   bool
	finalVoted bool

	blocks  map[types.BlockID]*types.Block
	valid   map[types.BlockID]bool
	pending map[types.BlockID]*types.Proposal

	notarVoted map[types.BlockID]bool // N

	notarVotes map[types.BlockID]map[types.ReplicaID][]byte
	finalVotes map[types.BlockID]map[types.ReplicaID][]byte

	notarizations map[types.BlockID]*types.Certificate

	finalized      bool
	finalizedBlock types.BlockID

	advanceBlock types.BlockID
	advanceNotar *types.Certificate

	notarTimerSet map[types.Rank]bool
}

func newRoundState() *roundState {
	return &roundState{
		blocks:        make(map[types.BlockID]*types.Block),
		valid:         make(map[types.BlockID]bool),
		pending:       make(map[types.BlockID]*types.Proposal),
		notarVoted:    make(map[types.BlockID]bool),
		notarVotes:    make(map[types.BlockID]map[types.ReplicaID][]byte),
		finalVotes:    make(map[types.BlockID]map[types.ReplicaID][]byte),
		notarizations: make(map[types.BlockID]*types.Certificate),
		notarTimerSet: make(map[types.Rank]bool),
	}
}

// Engine is the ICC consensus state machine for one replica.
type Engine struct {
	cfg  Config
	tree *blocktree.Tree

	round  types.Round
	rounds map[types.Round]*roundState

	extFinal      map[types.Round]*types.Certificate
	pendingCommit map[types.BlockID]protocol.FinalizationMode

	// Catch-up state, exactly as in the Banyan engine (see core.Engine).
	latestFinal  *types.Certificate
	syncHigh     types.Round
	catchupDirty bool
	lastSyncReq  time.Time
	lastSyncFrom types.Round
	syncStalls   int

	stopped bool
	fault   error

	lastPrune types.Round

	met struct {
		roundsStarted int64
		proposals     int64
		relays        int64
		votesSent     int64
		advances      int64
		slowFinal     int64
		indirectFinal int64
		blocksCommit  int64
		bytesCommit   int64
		rejected      int64
		resends       int64
	}
}

var _ protocol.Engine = (*Engine)(nil)

// New builds an ICC engine from the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:           cfg,
		tree:          blocktree.New(),
		rounds:        make(map[types.Round]*roundState),
		extFinal:      make(map[types.Round]*types.Certificate),
		pendingCommit: make(map[types.BlockID]protocol.FinalizationMode),
	}, nil
}

// ID implements protocol.Engine.
func (e *Engine) ID() types.ReplicaID { return e.cfg.Self }

// Protocol implements protocol.Engine.
func (e *Engine) Protocol() string { return "icc" }

// Round returns the current round (tests/harness).
func (e *Engine) Round() types.Round { return e.round }

// Tree exposes the block tree (tests/harness).
func (e *Engine) Tree() *blocktree.Tree { return e.tree }

// Start implements protocol.Engine.
func (e *Engine) Start(now time.Time) []protocol.Action {
	var acts []protocol.Action
	acts = e.enterRound(1, now, acts)
	return e.progress(now, acts)
}

// HandleMessage implements protocol.Engine.
func (e *Engine) HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []protocol.Action {
	if e.stopped || int(from) >= e.cfg.Params.N {
		return nil
	}
	switch m := msg.(type) {
	case *types.Proposal:
		e.onProposal(m)
	case *types.VoteMsg:
		for _, v := range m.Votes {
			e.onVote(v)
		}
	case *types.CertMsg:
		e.onCert(m.Cert)
	case *types.Advance:
		e.onCert(m.Notarization)
	case *types.SyncRequest:
		return e.onSyncRequest(from, m)
	case *types.SyncResponse:
		e.onSyncResponse(m)
	default:
		e.met.rejected++
		return nil
	}
	return e.progress(now, nil)
}

// HandleTimer implements protocol.Engine.
func (e *Engine) HandleTimer(id protocol.TimerID, now time.Time) []protocol.Action {
	if e.stopped {
		return nil
	}
	var acts []protocol.Action
	if id.Kind == protocol.TimerResend && id.Round == e.round {
		acts = e.resendRound(now, acts)
	}
	return e.progress(now, acts)
}

// resendRound rebroadcasts this replica's round state after a stall; see
// core.Engine.resendRound.
func (e *Engine) resendRound(now time.Time, acts []protocol.Action) []protocol.Action {
	rs := e.getRound(e.round)
	if !rs.started || rs.advanced {
		return acts
	}
	e.met.resends++
	var votes []types.Vote
	for kind, ledger := range map[types.VoteKind]map[types.BlockID]map[types.ReplicaID][]byte{
		types.VoteNotarize: rs.notarVotes,
		types.VoteFinalize: rs.finalVotes,
	} {
		for block, byVoter := range ledger {
			if sig, ok := byVoter[e.cfg.Self]; ok {
				votes = append(votes, types.Vote{
					Kind: kind, Round: e.round, Block: block, Voter: e.cfg.Self, Signature: sig,
				})
			}
		}
	}
	if len(votes) > 0 {
		acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: votes}})
	}
	if b := e.bestKnownBlock(rs); b != nil {
		p := &types.Proposal{Block: b, Relayed: true}
		if b.Round > 1 && !e.tree.IsFinalized(b.Parent) {
			p.ParentNotarization = e.getRound(b.Round - 1).notarizations[b.Parent]
		}
		acts = append(acts, protocol.Broadcast{Msg: p})
	}
	for _, cert := range rs.notarizations {
		acts = append(acts, protocol.Broadcast{Msg: &types.CertMsg{Cert: cert}})
	}
	acts = append(acts, protocol.Broadcast{Msg: &types.SyncRequest{
		From: e.tree.FinalizedRound() + 1,
		To:   e.tree.FinalizedRound() + types.MaxSyncBlocks,
	}})
	acts = append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Round: e.round, Kind: protocol.TimerResend},
		At: now.Add(e.resendInterval()),
	})
	return acts
}

func (e *Engine) bestKnownBlock(rs *roundState) *types.Block {
	var best *types.Block
	for id := range rs.valid {
		b := rs.blocks[id]
		if best == nil || b.Rank < best.Rank {
			best = b
		}
	}
	if best != nil {
		return best
	}
	for _, b := range rs.blocks {
		if best == nil || b.Rank < best.Rank {
			best = b
		}
	}
	return best
}

func (e *Engine) resendInterval() time.Duration {
	return 2 * e.cfg.Delta * time.Duration(e.cfg.Params.N+2)
}

// Metrics implements protocol.Engine.
func (e *Engine) Metrics() map[string]int64 {
	return map[string]int64{
		"rounds":         e.met.roundsStarted,
		"proposals":      e.met.proposals,
		"relays":         e.met.relays,
		"votes_sent":     e.met.votesSent,
		"advances":       e.met.advances,
		"final_slow":     e.met.slowFinal,
		"final_indirect": e.met.indirectFinal,
		"blocks_commit":  e.met.blocksCommit,
		"bytes_commit":   e.met.bytesCommit,
		"rejected":       e.met.rejected,
		"resends":        e.met.resends,
	}
}

// ---------------------------------------------------------------------------
// Ingestion.

func (e *Engine) onProposal(m *types.Proposal) {
	b := m.Block
	if b == nil || b.Round < 1 || int(b.Proposer) >= e.cfg.Params.N {
		e.met.rejected++
		return
	}
	if b.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	if b.Rank != e.cfg.Beacon.RankOf(b.Round, b.Proposer) {
		e.met.rejected++
		return
	}
	rs := e.getRound(b.Round)
	id := b.ID()
	if _, known := rs.blocks[id]; !known {
		if err := crypto.VerifyBlock(e.cfg.Keyring, b); err != nil {
			e.met.rejected++
			return
		}
		rs.blocks[id] = b
		e.tree.Add(b)
		if !rs.valid[id] {
			rs.pending[id] = m
		}
	}
	if m.ParentNotarization != nil {
		e.onCert(m.ParentNotarization)
	}
}

func (e *Engine) onVote(v types.Vote) {
	if v.Round < 1 || int(v.Voter) >= e.cfg.Params.N {
		e.met.rejected++
		return
	}
	if v.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	rs := e.getRound(v.Round)
	var ledger map[types.BlockID]map[types.ReplicaID][]byte
	switch v.Kind {
	case types.VoteNotarize:
		ledger = rs.notarVotes
	case types.VoteFinalize:
		ledger = rs.finalVotes
	default:
		// ICC has no fast votes; ignore silently so mixed-protocol test
		// rigs do not pollute the rejected counter.
		return
	}
	if _, dup := ledger[v.Block][v.Voter]; dup {
		return
	}
	if err := crypto.VerifyVote(e.cfg.Keyring, v); err != nil {
		e.met.rejected++
		return
	}
	m, ok := ledger[v.Block]
	if !ok {
		m = make(map[types.ReplicaID][]byte)
		ledger[v.Block] = m
	}
	m[v.Voter] = v.Signature
}

func (e *Engine) onCert(c *types.Certificate) {
	if c == nil || c.Round < 1 {
		return
	}
	if c.Round+e.cfg.PruneKeep <= e.tree.FinalizedRound() {
		return
	}
	rs := e.getRound(c.Round)
	switch c.Kind {
	case types.CertNotarization:
		if rs.notarizations[c.Block] != nil {
			return
		}
		if err := crypto.VerifyCert(e.cfg.Keyring, c, e.cfg.quorum()); err != nil {
			e.met.rejected++
			return
		}
		rs.notarizations[c.Block] = c
		e.tree.MarkNotarized(c.Block)
	case types.CertFinalization:
		if rs.finalized || e.extFinal[c.Round] != nil {
			return
		}
		if err := crypto.VerifyCert(e.cfg.Keyring, c, e.cfg.quorum()); err != nil {
			e.met.rejected++
			return
		}
		if c.Round <= e.round+1 {
			e.extFinal[c.Round] = c
		}
		e.noteFinalCert(c)
	default:
		e.met.rejected++
	}
}

// ---------------------------------------------------------------------------
// Progress loop.

func (e *Engine) progress(now time.Time, acts []protocol.Action) []protocol.Action {
	for {
		changed := false
		if e.revalidate() {
			changed = true
		}
		if c, a := e.tryNotarize(acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryPropose(now, acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryVote(now, acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryFinalize(acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryAdvance(now, acts); c {
			changed, acts = true, a
		}
		if c, a := e.tryJump(now, acts); c {
			changed, acts = true, a
		}
		if e.stopped {
			if e.fault != nil {
				acts = append(acts, protocol.SafetyFault{Err: e.fault})
				e.fault = nil
			}
			return acts
		}
		if !changed {
			break
		}
	}
	acts = e.scheduleNotarTimers(now, acts)
	acts = e.maybeSync(now, acts)
	e.maybePrune()
	return acts
}

// noteFinalCert remembers the highest-round finalization certificate and
// flags catch-up work when it proves the cluster is ahead.
func (e *Engine) noteFinalCert(c *types.Certificate) {
	if e.latestFinal == nil || c.Round > e.latestFinal.Round {
		e.latestFinal = c
		if c.Round > e.round+1 {
			e.catchupDirty = true
		}
	}
}

// tryJump fast-forwards past rounds the cluster has already finalized;
// see core.Engine.tryJump for the safety argument.
func (e *Engine) tryJump(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	fin := e.tree.FinalizedRound()
	if fin < e.round {
		return false, acts
	}
	finID, ok := e.tree.FinalizedAt(fin)
	if !ok {
		return false, acts
	}
	rs := e.getRound(fin)
	rs.advanced = true
	rs.advanceBlock = finID
	rs.advanceNotar = nil
	acts = e.enterRound(fin+1, now, acts)
	return true, acts
}

// maybeSync drives catch-up; see core.Engine.maybeSync.
func (e *Engine) maybeSync(now time.Time, acts []protocol.Action) []protocol.Action {
	if !e.catchupDirty || e.latestFinal == nil {
		return acts
	}
	e.catchupDirty = false
	fin := e.tree.FinalizedRound()
	if e.latestFinal.Round <= fin {
		return acts
	}
	var done bool
	acts, done = e.commitChain(e.latestFinal.Block, protocol.FinalizeIndirect, acts)
	if done {
		// Caught up: fast-forward the current round immediately.
		if c, a := e.tryJump(now, acts); c {
			acts = a
		}
		return acts
	}
	if !e.lastSyncReq.IsZero() && now.Sub(e.lastSyncReq) < 2*e.cfg.Delta {
		e.catchupDirty = true
		return acts
	}
	from := fin + 1
	if e.syncHigh >= from {
		from = e.syncHigh + 1
	}
	if from == e.lastSyncFrom {
		e.syncStalls++
		if e.syncStalls > 3 {
			e.syncHigh = fin
			e.syncStalls = 0
			from = fin + 1
		}
	} else {
		e.syncStalls = 0
	}
	e.lastSyncReq = now
	e.lastSyncFrom = from
	return append(acts, protocol.Broadcast{Msg: &types.SyncRequest{
		From: from,
		To:   e.latestFinal.Round,
	}})
}

// onSyncRequest serves finalized blocks to a lagging peer.
func (e *Engine) onSyncRequest(from types.ReplicaID, m *types.SyncRequest) []protocol.Action {
	start := m.From
	if start < 1 {
		start = 1
	}
	fin := e.tree.FinalizedRound()
	end := m.To
	if end > fin {
		end = fin
	}
	if max := start + types.MaxSyncBlocks - 1; end > max {
		end = max
	}
	if end < start {
		return nil
	}
	resp := &types.SyncResponse{Finalization: e.latestFinal}
	for r := start; r <= end; r++ {
		id, ok := e.tree.FinalizedAt(r)
		if !ok {
			break
		}
		b, ok := e.tree.Block(id)
		if !ok {
			break
		}
		resp.Blocks = append(resp.Blocks, b)
	}
	if len(resp.Blocks) == 0 {
		return nil
	}
	return []protocol.Action{protocol.Send{To: from, Msg: resp}}
}

// onSyncResponse ingests a catch-up segment; see core.Engine.
func (e *Engine) onSyncResponse(m *types.SyncResponse) {
	if len(m.Blocks) > types.MaxSyncBlocks {
		e.met.rejected++
		return
	}
	for _, b := range m.Blocks {
		if b == nil || b.Round < 1 || int(b.Proposer) >= e.cfg.Params.N {
			e.met.rejected++
			continue
		}
		if b.Rank != e.cfg.Beacon.RankOf(b.Round, b.Proposer) {
			e.met.rejected++
			continue
		}
		if !e.tree.Contains(b.Parent) {
			break
		}
		if !e.tree.Contains(b.ID()) {
			if err := crypto.VerifyBlock(e.cfg.Keyring, b); err != nil {
				e.met.rejected++
				continue
			}
			e.tree.Add(b)
		}
		if b.Round > e.syncHigh {
			e.syncHigh = b.Round
		}
	}
	e.catchupDirty = true
	if m.Finalization != nil {
		e.onCert(m.Finalization)
	}
}

func (e *Engine) getRound(r types.Round) *roundState {
	rs, ok := e.rounds[r]
	if !ok {
		rs = newRoundState()
		e.rounds[r] = rs
	}
	return rs
}

func (e *Engine) enterRound(r types.Round, now time.Time, acts []protocol.Action) []protocol.Action {
	e.round = r
	rs := e.getRound(r)
	rs.started = true
	rs.t0 = now
	e.met.roundsStarted++
	rank := e.cfg.Beacon.RankOf(r, e.cfg.Self)
	if rank > 0 {
		acts = append(acts, protocol.SetTimer{
			ID: protocol.TimerID{Round: r, Kind: protocol.TimerPropose, Rank: rank},
			At: now.Add(e.delay(rank)),
		})
	}
	acts = append(acts, protocol.SetTimer{
		ID: protocol.TimerID{Round: r, Kind: protocol.TimerResend},
		At: now.Add(e.resendInterval()),
	})
	return acts
}

func (e *Engine) delay(rank types.Rank) time.Duration {
	return 2 * e.cfg.Delta * time.Duration(rank)
}

func (e *Engine) revalidate() bool {
	changed := false
	for r := e.tree.FinalizedRound(); r <= e.round+1; r++ {
		rs, ok := e.rounds[r]
		if !ok {
			continue
		}
		for id, p := range rs.pending {
			if !e.parentOK(p.Block) {
				continue
			}
			rs.valid[id] = true
			delete(rs.pending, id)
			changed = true
		}
	}
	return changed
}

// parentOK: the block extends a notarized round-(k−1) block (ICC validity).
func (e *Engine) parentOK(b *types.Block) bool {
	if b.Round == 1 {
		return b.Parent == e.tree.Genesis().ID()
	}
	if e.tree.IsFinalized(b.Parent) {
		return true
	}
	prev, ok := e.rounds[b.Round-1]
	if !ok {
		return false
	}
	return prev.notarizations[b.Parent] != nil || e.tree.IsNotarized(b.Parent)
}

func (e *Engine) tryPropose(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	rs := e.getRound(e.round)
	if !rs.started || rs.proposed || rs.advanced {
		return false, acts
	}
	rank := e.cfg.Beacon.RankOf(e.round, e.cfg.Self)
	if now.Before(rs.t0.Add(e.delay(rank))) {
		return false, acts
	}
	parentID, parentNotar := e.parentCreds(e.round)
	payload := e.cfg.Payloads.NextPayload(e.round)
	b := types.NewBlock(e.round, e.cfg.Self, rank, parentID, payload)
	if err := e.cfg.Signer.SignBlock(b); err != nil {
		e.stop(fmt.Errorf("icc: signing own block: %w", err))
		return true, acts
	}
	id := b.ID()
	rs.blocks[id] = b
	rs.valid[id] = true
	e.tree.Add(b)
	rs.proposed = true
	e.met.proposals++
	return true, append(acts, protocol.Broadcast{Msg: &types.Proposal{
		Block:              b,
		ParentNotarization: parentNotar,
	}})
}

func (e *Engine) parentCreds(r types.Round) (types.BlockID, *types.Certificate) {
	if r == 1 {
		return e.tree.Genesis().ID(), nil
	}
	prev := e.getRound(r - 1)
	return prev.advanceBlock, prev.advanceNotar
}

func (e *Engine) tryVote(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	rs := e.getRound(e.round)
	if !rs.started || rs.advanced {
		return false, acts
	}
	minRank, found := types.Rank(0), false
	for id := range rs.valid {
		b := rs.blocks[id]
		if !found || b.Rank < minRank {
			minRank, found = b.Rank, true
		}
	}
	if !found || now.Before(rs.t0.Add(e.delay(minRank))) {
		return false, acts
	}
	changed := false
	myRank := e.cfg.Beacon.RankOf(e.round, e.cfg.Self)
	for id := range rs.valid {
		b := rs.blocks[id]
		if b.Rank != minRank || rs.notarVoted[id] {
			continue
		}
		rs.notarVoted[id] = true
		changed = true
		if b.Rank != myRank && !e.cfg.DisableForwarding {
			p := &types.Proposal{Block: b, Relayed: true}
			if b.Round > 1 && !e.tree.IsFinalized(b.Parent) {
				p.ParentNotarization = e.getRound(b.Round - 1).notarizations[b.Parent]
			}
			acts = append(acts, protocol.Broadcast{Msg: p})
			e.met.relays++
		}
		nv := e.cfg.Signer.SignVote(types.VoteNotarize, e.round, id)
		if m, ok := rs.notarVotes[id]; ok {
			m[e.cfg.Self] = nv.Signature
		} else {
			rs.notarVotes[id] = map[types.ReplicaID][]byte{e.cfg.Self: nv.Signature}
		}
		e.met.votesSent++
		acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{nv}}})
	}
	return changed, acts
}

func (e *Engine) tryNotarize(acts []protocol.Action) (bool, []protocol.Action) {
	changed := false
	for r := e.tree.FinalizedRound(); r <= e.round; r++ {
		rs, ok := e.rounds[r]
		if !ok {
			continue
		}
		for id, votes := range rs.notarVotes {
			if len(votes) < e.cfg.quorum() || rs.notarizations[id] != nil {
				continue
			}
			vs := make([]types.Vote, 0, len(votes))
			for voter, sig := range votes {
				vs = append(vs, types.Vote{
					Kind: types.VoteNotarize, Round: r, Block: id, Voter: voter, Signature: sig,
				})
			}
			cert, err := types.NewCertificate(types.CertNotarization, r, id, vs)
			if err != nil {
				continue
			}
			rs.notarizations[id] = cert
			e.tree.MarkNotarized(id)
			changed = true
		}
	}
	return changed, acts
}

func (e *Engine) tryFinalize(acts []protocol.Action) (bool, []protocol.Action) {
	changed := false
	for r := e.tree.FinalizedRound() + 1; r <= e.round; r++ {
		rs, ok := e.rounds[r]
		if !ok || rs.finalized {
			continue
		}
		if cert := e.extFinal[r]; cert != nil {
			changed = true
			acts = e.finalizeExplicit(rs, cert, protocol.FinalizeIndirect, acts)
			continue
		}
		for id, votes := range rs.finalVotes {
			if len(votes) < e.cfg.quorum() {
				continue
			}
			vs := make([]types.Vote, 0, len(votes))
			for voter, sig := range votes {
				vs = append(vs, types.Vote{
					Kind: types.VoteFinalize, Round: r, Block: id, Voter: voter, Signature: sig,
				})
			}
			cert, err := types.NewCertificate(types.CertFinalization, r, id, vs)
			if err != nil {
				continue
			}
			changed = true
			acts = e.finalizeExplicit(rs, cert, protocol.FinalizeSlow, acts)
			break
		}
	}
	for id, mode := range e.pendingCommit {
		var done bool
		acts, done = e.commitChain(id, mode, acts)
		if done {
			delete(e.pendingCommit, id)
			changed = true
		}
	}
	return changed, acts
}

func (e *Engine) finalizeExplicit(rs *roundState, cert *types.Certificate,
	mode protocol.FinalizationMode, acts []protocol.Action) []protocol.Action {
	rs.finalized = true
	rs.finalizedBlock = cert.Block
	e.noteFinalCert(cert)
	if mode == protocol.FinalizeSlow {
		e.met.slowFinal++
		acts = append(acts, protocol.Broadcast{Msg: &types.CertMsg{Cert: cert}})
	} else {
		e.met.indirectFinal++
	}
	acts, done := e.commitChain(cert.Block, mode, acts)
	if !done {
		e.pendingCommit[cert.Block] = mode
	}
	return acts
}

func (e *Engine) commitChain(id types.BlockID, mode protocol.FinalizationMode,
	acts []protocol.Action) ([]protocol.Action, bool) {
	chain, err := e.tree.Finalize(id)
	switch {
	case err == nil:
		if len(chain) > 0 {
			for _, b := range chain {
				e.met.blocksCommit++
				e.met.bytesCommit += int64(b.Payload.Size())
			}
			acts = append(acts, protocol.Commit{Blocks: chain, Explicit: mode})
		}
		return acts, true
	case errors.Is(err, blocktree.ErrMissingAncestor):
		return acts, false
	default:
		e.stop(err)
		return acts, true
	}
}

// tryAdvance: ICC moves to the next round as soon as some block of the
// current round is notarized (paper section 4, "Notarization"); the
// replica broadcasts the notarization, and sends a finalization vote if it
// notarization-voted for no other block.
func (e *Engine) tryAdvance(now time.Time, acts []protocol.Action) (bool, []protocol.Action) {
	rs := e.getRound(e.round)
	if !rs.started || rs.advanced {
		return false, acts
	}
	var (
		best  types.BlockID
		bestR types.Rank
		found bool
	)
	for id := range rs.notarizations {
		b, ok := rs.blocks[id]
		if !ok {
			if !found {
				best, bestR, found = id, types.Rank(^uint16(0)), true
			}
			continue
		}
		if !found || b.Rank < bestR {
			best, bestR, found = id, b.Rank, true
		}
	}
	if !found {
		return false, acts
	}
	round := e.round
	rs.advanced = true
	rs.advanceBlock = best
	rs.advanceNotar = rs.notarizations[best]
	e.met.advances++
	acts = append(acts, protocol.Broadcast{Msg: &types.Advance{Notarization: rs.advanceNotar}})

	if !rs.finalVoted && nSubsetOf(rs.notarVoted, best) {
		fv := e.cfg.Signer.SignVote(types.VoteFinalize, round, best)
		rs.finalVoted = true
		if m, ok := rs.finalVotes[best]; ok {
			m[e.cfg.Self] = fv.Signature
		} else {
			rs.finalVotes[best] = map[types.ReplicaID][]byte{e.cfg.Self: fv.Signature}
		}
		e.met.votesSent++
		acts = append(acts, protocol.Broadcast{Msg: &types.VoteMsg{Votes: []types.Vote{fv}}})
	}
	acts = e.enterRound(round+1, now, acts)
	return true, acts
}

func nSubsetOf(n map[types.BlockID]bool, b types.BlockID) bool {
	for id := range n {
		if id != b {
			return false
		}
	}
	return true
}

func (e *Engine) scheduleNotarTimers(now time.Time, acts []protocol.Action) []protocol.Action {
	rs := e.getRound(e.round)
	if !rs.started || rs.advanced {
		return acts
	}
	for id := range rs.blocks {
		b := rs.blocks[id]
		if rs.notarTimerSet[b.Rank] {
			continue
		}
		rs.notarTimerSet[b.Rank] = true
		at := rs.t0.Add(e.delay(b.Rank))
		if !now.Before(at) {
			continue
		}
		acts = append(acts, protocol.SetTimer{
			ID: protocol.TimerID{Round: e.round, Kind: protocol.TimerNotarize, Rank: b.Rank},
			At: at,
		})
	}
	return acts
}

func (e *Engine) stop(err error) {
	if !e.stopped {
		e.stopped = true
		e.fault = err
	}
}

func (e *Engine) maybePrune() {
	fin := e.tree.FinalizedRound()
	if fin < e.lastPrune+e.cfg.PruneInterval {
		return
	}
	e.lastPrune = fin
	if fin <= e.cfg.PruneKeep {
		return
	}
	floor := fin - e.cfg.PruneKeep
	for r := range e.rounds {
		if r < floor {
			delete(e.rounds, r)
		}
	}
	for r := range e.extFinal {
		if r < floor {
			delete(e.extFinal, r)
		}
	}
	e.tree.Prune(floor)
}
