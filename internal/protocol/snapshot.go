package protocol

import "banyan/internal/types"

// Snapshot is a compact, replayable summary of an engine's durable state
// at a finalization boundary, produced for WAL checkpointing. It carries
// exactly what a restarted replica cannot re-derive from the cluster:
//
//   - the finalized chain window (the rounds the engine still retains
//     under its pruning policy), which re-anchors the block tree so
//     post-checkpoint messages connect;
//   - the replica's own messages for every live round — proposals, votes,
//     certificates — whose replay restores the "I already did this" flags
//     that make a restarted replica unable to equivocate;
//   - the newest finalization certificate, so the replica can serve and
//     follow catch-up immediately.
//
// Everything else (peer votes, notarizations for open rounds) is
// liveness-only state the cluster re-supplies through resends and the
// sync subprotocol.
//
// A Snapshot is not trusted on its own: the WAL recorder replays Own
// through the engine's normal replay path, which re-verifies every
// signature, so a corrupted-but-CRC-valid checkpoint cannot smuggle a
// forged vote into the restored voting record. The chain window is
// held to the same standard — restore re-verifies every block's
// proposer signature and requires a quorum-verified finalization
// certificate covering the window tip before adopting it as finalized
// history.
type Snapshot struct {
	// Round is the engine's current round when the snapshot was taken.
	// Informational: restore re-enters from FinalizedRound+1 and lets
	// replayed records and live catch-up advance from there.
	Round types.Round
	// FinalizedRound is the finalized height the snapshot captures.
	FinalizedRound types.Round
	// Chain is the finalized block window in ascending round order,
	// contiguous by parent links, ending at FinalizedRound.
	Chain []*types.Block
	// Own holds wire messages to feed back through the engine's replay
	// path: the replica's own proposals and votes for rounds above the
	// chain window's floor, plus the newest finalization certificate.
	Own []types.Message
	// Sets is the validator-set history at checkpoint time (ascending
	// epochs, genesis first). Restore re-verifies the chain structurally
	// and against the configured genesis set before adopting it, so a
	// replica that crashed after an epoch change replays under the
	// post-change set rather than re-deriving epochs from pruned blocks.
	Sets []*types.ValidatorSetDesc
}

// Snapshotter is implemented by engines that can summarize themselves
// into a Snapshot and be rebuilt from one. The WAL recorder uses it to
// checkpoint the log: replay then starts from the snapshot instead of
// the beginning of history, making restart cost independent of uptime.
type Snapshotter interface {
	// Snapshot captures the engine's durable state. Called between
	// ordinary event-loop steps (never during replay).
	Snapshot() *Snapshot
	// RestoreSnapshot seeds a fresh engine from a snapshot. Called in
	// replay mode, after BeginReplay and before any records are fed; the
	// engine must re-verify everything it adopts.
	RestoreSnapshot(s *Snapshot) error
}
