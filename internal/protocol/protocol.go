// Package protocol defines the contract between consensus engines and
// their hosts (the real-time node runtime and the discrete-event
// simulator).
//
// An Engine is a passive, deterministic state machine: hosts feed it
// events — start, inbound messages, timer fires — each stamped with the
// current time, and the engine returns a list of actions to perform. The
// engine never spawns goroutines, reads clocks, or touches the network, so
// the identical protocol code runs under wall-clock TCP deployments and
// under virtual-time simulation, and unit tests can drive it line by line.
// This is the property paper section 9.1 demands ("treat all protocols
// equally"): every protocol in this repository is hosted by the same
// runtime.
package protocol

import (
	"fmt"
	"time"

	"banyan/internal/types"
)

// TimerKind labels the purpose of a timer so engines can route fires.
type TimerKind uint8

const (
	// TimerPropose fires when this replica's proposal delay for a round
	// expires (Δ_prop(r) = 2Δ·r).
	TimerPropose TimerKind = iota + 1
	// TimerNotarize fires when the notarization delay for a rank expires
	// (Δ_notary(r) = 2Δ·r).
	TimerNotarize
	// TimerView fires when a view/epoch timeout elapses (HotStuff pacemaker,
	// Streamlet epochs).
	TimerView
	// TimerResend fires when a replica has been stuck in one round long
	// enough to suspect message loss; the engine rebroadcasts its round
	// state (votes, best block, certificates). The BFT model assumes
	// reliable links, but deployments see reconnects and drops — this is
	// the standard liveness hardening.
	TimerResend
	// TimerStateSync fires while a snapshot fetch is in flight; the engine
	// checks the per-peer deadline and retries the request against the next
	// peer in rotation if the current one went silent.
	TimerStateSync
	// TimerBatchFetch fires while a batch-body fetch is in flight
	// (delivery gating, internal/dissem); same deadline-check-and-rotate
	// discipline as TimerStateSync.
	TimerBatchFetch
)

func (k TimerKind) String() string {
	switch k {
	case TimerPropose:
		return "propose"
	case TimerNotarize:
		return "notarize"
	case TimerView:
		return "view"
	case TimerResend:
		return "resend"
	case TimerStateSync:
		return "state-sync"
	case TimerBatchFetch:
		return "batch-fetch"
	default:
		return fmt.Sprintf("TimerKind(%d)", uint8(k))
	}
}

// TimerID identifies a pending timer. Engines receive it back on fire and
// discard stale fires (e.g. from rounds already left).
type TimerID struct {
	Round types.Round
	Kind  TimerKind
	Rank  types.Rank
}

func (t TimerID) String() string {
	return fmt.Sprintf("timer{%s r=%d rank=%d}", t.Kind, t.Round, t.Rank)
}

// Action is an instruction from an engine to its host. The sealed marker
// keeps the set closed so hosts can switch exhaustively.
type Action interface{ isAction() }

// Broadcast sends a message to every other replica (best-effort broadcast;
// the sender does not loop the message back to itself — engines account
// for their own votes directly).
type Broadcast struct {
	Msg types.Message
}

// Send sends a message to a single replica.
type Send struct {
	To  types.ReplicaID
	Msg types.Message
}

// SetTimer asks the host to fire TimerID at absolute time At. Hosts must
// deliver fires with the same ID at-most-once per request; engines tolerate
// duplicates and staleness.
type SetTimer struct {
	ID TimerID
	At time.Time
}

// Commit reports newly finalized blocks in chain order (oldest first).
// Explicit describes how the last block of the batch was explicitly
// finalized; earlier blocks are implicitly finalized ancestors.
type Commit struct {
	Blocks   []*types.Block
	Explicit FinalizationMode
}

// SafetyFault reports a detected safety violation (conflicting
// finalization). Hosts stop the replica; integration tests fail on it.
type SafetyFault struct {
	Err error
}

func (Broadcast) isAction()   {}
func (Send) isAction()        {}
func (SetTimer) isAction()    {}
func (Commit) isAction()      {}
func (SafetyFault) isAction() {}

// FinalizationMode says which path finalized a block.
type FinalizationMode uint8

const (
	// FinalizeSlow is ICC-style explicit finalization from finalization
	// votes (SP-finalization).
	FinalizeSlow FinalizationMode = iota + 1
	// FinalizeFast is Banyan's fast-path finalization from n-p fast votes
	// (FP-finalization).
	FinalizeFast
	// FinalizeIndirect means the block was finalized by a certificate
	// received from another replica or by a descendant's finalization.
	FinalizeIndirect
)

func (m FinalizationMode) String() string {
	switch m {
	case FinalizeSlow:
		return "slow"
	case FinalizeFast:
		return "fast"
	case FinalizeIndirect:
		return "indirect"
	default:
		return fmt.Sprintf("FinalizationMode(%d)", uint8(m))
	}
}

// Engine is a consensus protocol instance for one replica.
//
// Hosts guarantee single-threaded access: calls never overlap. All methods
// receive the host's current time and return the actions to execute, in
// order.
type Engine interface {
	// ID is the replica this engine instance runs for.
	ID() types.ReplicaID
	// Protocol names the protocol ("banyan", "icc", "hotstuff", "streamlet").
	Protocol() string
	// Start boots the engine at time now (enter round 1 / view 1).
	Start(now time.Time) []Action
	// HandleMessage processes one inbound message from a peer.
	HandleMessage(from types.ReplicaID, msg types.Message, now time.Time) []Action
	// HandleTimer processes a timer fire previously requested via SetTimer.
	HandleTimer(id TimerID, now time.Time) []Action
	// Metrics returns protocol counters (fast/slow finalizations, rounds,
	// timeouts, ...) for the harness. Keys are engine-specific.
	Metrics() map[string]int64
}

// PayloadSource provides block payloads to proposing engines. The mempool
// package implements it for client transactions; the harness implements it
// for the paper's synthetic leader-generated bit vectors (section 9.2).
type PayloadSource interface {
	// NextPayload returns the payload for a block this replica is about to
	// propose in the given round.
	NextPayload(round types.Round) types.Payload
}

// PayloadFunc adapts a function to PayloadSource.
type PayloadFunc func(round types.Round) types.Payload

// NextPayload implements PayloadSource.
func (f PayloadFunc) NextPayload(round types.Round) types.Payload { return f(round) }

// EmptyPayloads is a PayloadSource producing empty payloads.
var EmptyPayloads PayloadSource = PayloadFunc(func(types.Round) types.Payload {
	return types.Payload{}
})
