package protocol

import (
	"testing"

	"banyan/internal/types"
)

func TestTimerKindString(t *testing.T) {
	tests := []struct {
		kind TimerKind
		want string
	}{
		{TimerPropose, "propose"},
		{TimerNotarize, "notarize"},
		{TimerView, "view"},
		{TimerKind(99), "TimerKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestFinalizationModeString(t *testing.T) {
	tests := []struct {
		mode FinalizationMode
		want string
	}{
		{FinalizeSlow, "slow"},
		{FinalizeFast, "fast"},
		{FinalizeIndirect, "indirect"},
		{FinalizationMode(42), "FinalizationMode(42)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestActionSetIsClosed(t *testing.T) {
	// The Action marker keeps the set of actions known to hosts; this is a
	// compile-time property, asserted here for documentation.
	var acts = []Action{
		Broadcast{},
		Send{},
		SetTimer{},
		Commit{},
		SafetyFault{},
	}
	if len(acts) != 5 {
		t.Fatal("unexpected action count")
	}
}

func TestPayloadFunc(t *testing.T) {
	src := PayloadFunc(func(r types.Round) types.Payload {
		return types.SyntheticPayload(int(r), 0)
	})
	if got := src.NextPayload(7).Size(); got != 7 {
		t.Fatalf("payload size %d, want 7", got)
	}
	if EmptyPayloads.NextPayload(3).Size() != 0 {
		t.Fatal("EmptyPayloads must produce empty payloads")
	}
}

func TestTimerIDString(t *testing.T) {
	id := TimerID{Round: 5, Kind: TimerNotarize, Rank: 2}
	if got := id.String(); got != "timer{notarize r=5 rank=2}" {
		t.Fatalf("String() = %q", got)
	}
}
