package banyan

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitForRound consumes replica-0 commits until one at or past round r
// (or the deadline), returning how many blocks were seen.
func waitForRound(t *testing.T, cluster *Cluster, r uint64, deadline time.Duration) int {
	t.Helper()
	timeout := time.After(deadline)
	blocks := 0
	for {
		select {
		case c, ok := <-cluster.Commits():
			if !ok {
				t.Fatal("commit stream closed early")
			}
			blocks++
			if c.Round >= r {
				return blocks
			}
		case <-timeout:
			t.Fatalf("timed out waiting for round %d commits", r)
		}
	}
}

// TestClusterCrashRestartWAL kills one replica of a live in-process
// cluster mid-run (abandoning its WAL's unsynced group, as a real crash
// would), restarts it from the log, and checks it rejoins: no safety
// faults anywhere, and a finalized chain byte-identical to a replica
// that never crashed.
func TestClusterCrashRestartWAL(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac", // cheap crypto: the test is about durability
		WALDir: t.TempDir(),
		// Per-record fsync so the replayed-records assertion below is
		// deterministic: this cluster reaches round 8 in milliseconds, and
		// under group commit a crash that early can legitimately precede
		// the first sync window, leaving an empty (and correct) durable
		// prefix. The tail-loss path is covered by the wal package's
		// TestCrashDropsUnsyncedTail and the localnet CI smoke run.
		WALSyncEveryRecord: true,
		// Append-only log: this test asserts the restarted replica
		// re-derives its chain byte-identically from round 1, which needs
		// full replay. Checkpointed restarts (bounded replay, suffix
		// re-delivery) are covered by TestClusterCheckpointRestart.
		WALCheckpointRounds: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const victim = 1
	waitForRound(t, cluster, 8, 20*time.Second)
	if err := cluster.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CrashReplica(victim); err == nil {
		t.Fatal("double crash not rejected")
	}
	// The cluster keeps finalizing with n-1 = 3f+... replicas while the
	// victim is down.
	waitForRound(t, cluster, 16, 20*time.Second)
	if err := cluster.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	// Give the restarted replica time to replay and catch up, then stop.
	waitForRound(t, cluster, 40, 30*time.Second)
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	ref := cluster.FinalizedChain(0)
	got := cluster.FinalizedChain(victim)
	if len(ref) == 0 || len(got) == 0 {
		t.Fatalf("empty chains: observer %d, victim %d", len(ref), len(got))
	}
	for i := 0; i < len(ref) && i < len(got); i++ {
		if ref[i] != got[i] {
			t.Fatalf("chain divergence at %d: observer %s, restarted %s", i, ref[i], got[i])
		}
	}
	// The restarted replica must have caught up close to the tip, which
	// requires both WAL replay (its own prefix) and live sync (the gap).
	if len(got) < len(ref)-8 {
		t.Fatalf("restarted replica holds %d blocks, observer %d", len(got), len(ref))
	}
	m := cluster.Metrics(victim)
	if m["wal_replayed_records"] == 0 {
		t.Error("restarted replica replayed no WAL records")
	}
	t.Logf("victim: %d blocks (observer %d), %d replayed records, %d appends / %d syncs",
		len(got), len(ref), m["wal_replayed_records"], m["wal_appends"], m["wal_syncs"])
}

// TestClusterCheckpointRestart is the acceptance scenario for WAL
// checkpointing: a cluster that has finalized 10× the engine's pruning
// window crashes a replica and restarts it. The restart must replay only
// O(PruneKeep) records (not all of history), the on-disk log must stay
// bounded by the checkpoint window, and the restored window must be
// byte-identical to the corresponding suffix of a replica that never
// crashed.
func TestClusterCheckpointRestart(t *testing.T) {
	const ckptRounds = 16 // == engine default PruneKeep
	walDir := t.TempDir()
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac",
		WALDir: walDir,
		// Group commit (default): checkpoint restarts tolerate tail loss
		// like any other restart, so the determinism crutch of the full-
		// replay test above is not needed here.
		WALCheckpointRounds: ckptRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const victim = 2
	// 10× the checkpoint window before the crash.
	waitForRound(t, cluster, 10*ckptRounds, 60*time.Second)
	if err := cluster.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 10*ckptRounds+8, 20*time.Second)
	if err := cluster.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 10*ckptRounds+40, 30*time.Second)
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	m := cluster.Metrics(victim)
	if m["wal_checkpoints"] == 0 {
		t.Error("victim wrote no checkpoints before the crash")
	}
	if m["wal_replayed_records"] == 0 {
		t.Error("victim replayed nothing")
	}
	// O(PruneKeep) replay: the victim journaled >160 rounds of history,
	// but replay must cover only the newest checkpoint plus the tail
	// since it — well under the ~20 records/round a full replay would
	// mean. Bound it by the appends the restarted life itself made plus
	// a generous per-window constant rather than total history.
	if replayed := m["wal_replayed_records"]; replayed > 40*ckptRounds {
		t.Errorf("replayed %d records — O(uptime), not O(PruneKeep)", replayed)
	}
	// Disk stays bounded by the checkpoint window: >200 rounds of
	// history at ~20 records/round would be megabytes append-only.
	var walBytes int64
	entries, err := os.ReadDir(filepath.Join(walDir, fmt.Sprintf("replica-%d", victim)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			walBytes += info.Size()
		}
	}
	if walBytes > 1<<20 {
		t.Errorf("victim WAL holds %d bytes — truncation ineffective", walBytes)
	}
	// The victim's restored window must be a byte-identical suffix of the
	// observer's chain (the window's first block can start anywhere at or
	// after the checkpoint floor).
	ref, got := cluster.FinalizedChain(0), cluster.FinalizedChain(victim)
	if len(ref) == 0 || len(got) == 0 {
		t.Fatalf("empty chains: observer %d, victim %d", len(ref), len(got))
	}
	start := -1
	for i, id := range ref {
		if id == got[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("victim window start %s not on observer chain", got[0])
	}
	for i := 0; i < len(got) && start+i < len(ref); i++ {
		if ref[start+i] != got[i] {
			t.Fatalf("window divergence at %d: observer %s, victim %s", i, ref[start+i], got[i])
		}
	}
	if len(got) < 2*ckptRounds {
		t.Errorf("victim window holds only %d blocks", len(got))
	}
	t.Logf("victim: %d checkpoints, %d replayed records, window %d blocks (observer %d), wal %dB",
		m["wal_checkpoints"], m["wal_replayed_records"], len(got), len(ref), walBytes)
}

// TestClusterCrashRestartOptimistic is the crash-restart scenario with
// optimistic proposal pipelining (Moonshot mode) on: the victim's WAL
// now journals credential-less optimistic bodies and their confirmation
// or fallback, and a crash landing between those records must replay
// without the restarted replica equivocating — a withdrawn body
// resurrected as a proposal would be a second signed rank-0 block for
// the same round. The victim crashes with no coordination to the
// optimistic lifecycle, so across the run the journal is cut at
// arbitrary phases; any equivocation would surface as a safety fault or
// chain divergence below.
func TestClusterCrashRestartOptimistic(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac",
		WALDir: t.TempDir(),
		// Same determinism choices as TestClusterCrashRestartWAL: per-record
		// sync and full replay, so the replayed-records assertion holds.
		WALSyncEveryRecord:  true,
		WALCheckpointRounds: -1,
		OptimisticProposals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const victim = 1
	waitForRound(t, cluster, 8, 20*time.Second)
	if err := cluster.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 16, 20*time.Second)
	if err := cluster.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 40, 30*time.Second)
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	ref := cluster.FinalizedChain(0)
	got := cluster.FinalizedChain(victim)
	if len(ref) == 0 || len(got) == 0 {
		t.Fatalf("empty chains: observer %d, victim %d", len(ref), len(got))
	}
	for i := 0; i < len(ref) && i < len(got); i++ {
		if ref[i] != got[i] {
			t.Fatalf("chain divergence at %d: observer %s, restarted %s", i, ref[i], got[i])
		}
	}
	if len(got) < len(ref)-8 {
		t.Fatalf("restarted replica holds %d blocks, observer %d", len(got), len(ref))
	}
	m := cluster.Metrics(victim)
	if m["wal_replayed_records"] == 0 {
		t.Error("restarted replica replayed no WAL records")
	}
	// The pipeline actually engaged: someone proposed optimistically and
	// confirmed. (The victim alone may have been down during all of its
	// leader rounds, so count cluster-wide.)
	var proposed, confirmed int64
	for i := 0; i < 4; i++ {
		cm := cluster.Metrics(i)
		proposed += cm["opt_proposed"]
		confirmed += cm["opt_confirmed"]
	}
	if proposed == 0 || confirmed == 0 {
		t.Errorf("optimistic pipeline never engaged: proposed=%d confirmed=%d", proposed, confirmed)
	}
	t.Logf("victim: %d blocks (observer %d), %d replayed records; cluster opt proposed=%d confirmed=%d",
		len(got), len(ref), m["wal_replayed_records"], proposed, confirmed)
}

// TestClusterRestartRequiresWAL: crash-restart without a WALDir must be
// rejected rather than silently restarting with amnesia.
func TestClusterRestartRequiresWAL(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, Delta: 5 * time.Millisecond, Scheme: "hmac"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.CrashReplica(2); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RestartReplica(2); err == nil {
		t.Fatal("RestartReplica without WALDir must fail")
	}
}
