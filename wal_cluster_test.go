package banyan

import (
	"testing"
	"time"
)

// waitForRound consumes replica-0 commits until one at or past round r
// (or the deadline), returning how many blocks were seen.
func waitForRound(t *testing.T, cluster *Cluster, r uint64, deadline time.Duration) int {
	t.Helper()
	timeout := time.After(deadline)
	blocks := 0
	for {
		select {
		case c, ok := <-cluster.Commits():
			if !ok {
				t.Fatal("commit stream closed early")
			}
			blocks++
			if c.Round >= r {
				return blocks
			}
		case <-timeout:
			t.Fatalf("timed out waiting for round %d commits", r)
		}
	}
}

// TestClusterCrashRestartWAL kills one replica of a live in-process
// cluster mid-run (abandoning its WAL's unsynced group, as a real crash
// would), restarts it from the log, and checks it rejoins: no safety
// faults anywhere, and a finalized chain byte-identical to a replica
// that never crashed.
func TestClusterCrashRestartWAL(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N:      4,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac", // cheap crypto: the test is about durability
		WALDir: t.TempDir(),
		// Per-record fsync so the replayed-records assertion below is
		// deterministic: this cluster reaches round 8 in milliseconds, and
		// under group commit a crash that early can legitimately precede
		// the first sync window, leaving an empty (and correct) durable
		// prefix. The tail-loss path is covered by the wal package's
		// TestCrashDropsUnsyncedTail and the localnet CI smoke run.
		WALSyncEveryRecord: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const victim = 1
	waitForRound(t, cluster, 8, 20*time.Second)
	if err := cluster.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CrashReplica(victim); err == nil {
		t.Fatal("double crash not rejected")
	}
	// The cluster keeps finalizing with n-1 = 3f+... replicas while the
	// victim is down.
	waitForRound(t, cluster, 16, 20*time.Second)
	if err := cluster.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	// Give the restarted replica time to replay and catch up, then stop.
	waitForRound(t, cluster, 40, 30*time.Second)
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	ref := cluster.FinalizedChain(0)
	got := cluster.FinalizedChain(victim)
	if len(ref) == 0 || len(got) == 0 {
		t.Fatalf("empty chains: observer %d, victim %d", len(ref), len(got))
	}
	for i := 0; i < len(ref) && i < len(got); i++ {
		if ref[i] != got[i] {
			t.Fatalf("chain divergence at %d: observer %s, restarted %s", i, ref[i], got[i])
		}
	}
	// The restarted replica must have caught up close to the tip, which
	// requires both WAL replay (its own prefix) and live sync (the gap).
	if len(got) < len(ref)-8 {
		t.Fatalf("restarted replica holds %d blocks, observer %d", len(got), len(ref))
	}
	m := cluster.Metrics(victim)
	if m["wal_replayed_records"] == 0 {
		t.Error("restarted replica replayed no WAL records")
	}
	t.Logf("victim: %d blocks (observer %d), %d replayed records, %d appends / %d syncs",
		len(got), len(ref), m["wal_replayed_records"], m["wal_appends"], m["wal_syncs"])
}

// TestClusterRestartRequiresWAL: crash-restart without a WALDir must be
// rejected rather than silently restarting with amnesia.
func TestClusterRestartRequiresWAL(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, Delta: 5 * time.Millisecond, Scheme: "hmac"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.CrashReplica(2); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RestartReplica(2); err == nil {
		t.Fatal("RestartReplica without WALDir must fail")
	}
}
