package banyan

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"banyan/internal/beacon"
	"banyan/internal/blocktree"
	"banyan/internal/core"
	"banyan/internal/crypto"
	"banyan/internal/dissem"
	"banyan/internal/hotstuff"
	"banyan/internal/icc"
	"banyan/internal/membership"
	"banyan/internal/mempool"
	"banyan/internal/node"
	"banyan/internal/obs"
	"banyan/internal/protocol"
	"banyan/internal/streamlet"
	"banyan/internal/transport/channel"
	"banyan/internal/types"
	"banyan/internal/wal"
)

// ClusterConfig configures an in-process cluster.
type ClusterConfig struct {
	// N is the number of replicas in the genesis validator set. Required.
	N int
	// MaxN is the number of replica identities to provision (keys, hub
	// slots, engines); zero means N. Identities in [N, MaxN) are not
	// genesis members: they boot later via JoinReplica — cold, catching up
	// through state sync — and become voters only when a finalized
	// ConfigChange admits them (AddValidator). Banyan protocols only.
	MaxN int
	// F is the number of Byzantine faults tolerated; zero picks the
	// maximum for N.
	F int
	// P is Banyan's fast-path slack (1 <= p <= f); zero picks 1.
	P int
	// Protocol selects the engine; empty picks ProtocolBanyan.
	Protocol Protocol
	// Delta is the message-delay bound Δ used for rank delays and epoch
	// lengths; zero picks a LAN-appropriate 10ms.
	Delta time.Duration
	// LinkDelay simulates a uniform one-way delay between replicas; zero
	// means direct in-memory delivery.
	LinkDelay time.Duration
	// MaxBlockBytes caps the transaction batch per block (default 1 MiB).
	MaxBlockBytes int
	// Scheme selects the signature scheme ("ed25519" default for clusters,
	// "hmac" for cheap simulation).
	Scheme string
	// Seed makes key generation deterministic (a production deployment
	// would exchange real keys; the cluster bootstraps a demo PKI).
	Seed uint64
	// CommitBuffer is the capacity of the Commits channel (default 1024).
	CommitBuffer int
	// VerifyWorkers sizes each replica's signature-verification pool: 0
	// selects GOMAXPROCS, 1 verifies inline, negative additionally skips
	// the node's preverification stage.
	VerifyWorkers int
	// VerifyCacheSize caps each replica's verified-signature cache
	// (0 default, negative disables caching).
	VerifyCacheSize int
	// WALDir, when non-empty, gives every replica a write-ahead log in
	// WALDir/replica-<i>. Replicas journal inbound messages, their own
	// proposals/votes/certificates and commit decisions; CrashReplica and
	// RestartReplica then express crash-restart scenarios: a restarted
	// replica replays its log, restores its voting record (so it cannot
	// equivocate), and rejoins the live cluster.
	WALDir string
	// WALSyncEveryRecord fsyncs per record instead of group-committing.
	WALSyncEveryRecord bool
	// WALSyncInterval is the group-commit window (0 = 2ms).
	WALSyncInterval time.Duration
	// WALSyncBytes flushes a group early at this many buffered bytes
	// (0 = 256 KiB).
	WALSyncBytes int
	// WALSegmentBytes rotates log segments at this size (0 = 64 MiB).
	WALSegmentBytes int
	// WALNoForceOwn drops the force-log-before-send rule for replicas'
	// own signed messages (see wal.SyncPolicy.NoForceOwn): faster, but a
	// crash may forget a vote the network already saw.
	WALNoForceOwn bool
	// WALContinueOnError keeps sending own votes after a WAL write error
	// instead of failing safe by going silent (see
	// wal.RecorderConfig.ContinueOnError).
	WALContinueOnError bool
	// WALCheckpointRounds controls WAL checkpointing: every this many
	// finalized rounds the replica journals an engine snapshot and
	// truncates the log behind it, so restart replay and disk usage stay
	// O(window) instead of growing with uptime. Zero selects the default
	// (16 rounds, matching the engine's pruning window); negative
	// disables checkpointing (append-only log, full replay). Note that a
	// replica restarted from a checkpoint re-delivers commits only from
	// the checkpoint window onward — the application is assumed to have
	// durably applied (or snapshotted) everything the checkpoint
	// summarizes.
	WALCheckpointRounds int
	// DeepPrune evicts finalized block bodies below the Banyan engines'
	// prune floor. Replicas then hold (and can serve catch-up from) only
	// a bounded window of the chain; peers that fall behind that window —
	// fresh joiners, disk-loss restarts — recover via peer snapshot state
	// sync instead of block-by-block replay.
	DeepPrune bool
	// PruneKeep / PruneInterval override the Banyan engines' pruning
	// cadence in rounds (0 = engine defaults: keep 16, prune every 64).
	PruneKeep, PruneInterval int
	// OptimisticProposals enables Moonshot-style proposal pipelining in
	// the Banyan engines: the next leader signs and broadcasts its block
	// on the expected parent before the round certifies, confirming it
	// with its fast vote or withdrawing it on a parent mismatch (see
	// core.Config.OptimisticProposals). Requires ProtocolBanyan (the fast
	// path). Keep the knob stable across restarts of a WAL-backed cluster.
	OptimisticProposals bool
	// Dissem decouples payload dissemination from ordering (Banyan
	// protocols only): replicas cut mempool transactions into
	// digest-addressed batches broadcast off the consensus path, blocks
	// commit ordered digest lists instead of transaction bytes, and
	// finalized delivery — never voting — waits for batch availability
	// (fetch-on-miss from the proposer). See internal/dissem.
	Dissem bool
	// DissemBatchBytes is the dissemination batch cut size; transactions
	// larger than this are rejected at Submit. Zero picks 64 KiB. Only
	// meaningful with Dissem.
	DissemBatchBytes int
	// DissemInlineMax bounds the inline tail a proposal may carry
	// alongside its batch refs, letting latency-sensitive transactions
	// skip a dissemination cycle. Zero means everything rides in batches.
	DissemInlineMax int
	// HoldStart lists replicas excluded from Start. A held replica boots
	// later via JoinReplica, cold, having observed nothing — the
	// fresh-join scenario.
	HoldStart []int
	// Obs enables the observability layer: every replica gets an
	// obs.Observer (lifecycle tracer, stage-latency histograms, gauges)
	// wired through its engine, node, and WAL. Off (nil observers) the
	// instrumented hot paths pay a single branch and no clock reads.
	// Observers survive crash-restarts, so histograms span a replica's
	// lives. Read them back via Observer.
	Obs bool
	// ObsTraceEvents overrides the tracer ring capacity
	// (0 = obs.DefaultTraceEvents). Only meaningful with Obs.
	ObsTraceEvents int
}

// defaultWALCheckpointRounds matches the engine's default PruneKeep, so
// replay work after a checkpointed restart is the same order as the
// engine's own in-memory retention.
const defaultWALCheckpointRounds = 16

// walCheckpointEvery resolves the WALCheckpointRounds knob.
func walCheckpointEvery(rounds int) types.Round {
	switch {
	case rounds < 0:
		return 0
	case rounds == 0:
		return defaultWALCheckpointRounds
	default:
		return types.Round(rounds)
	}
}

// checkpointEveryFor gates checkpointing on the engine's capability:
// only the Banyan core engine implements protocol.Snapshotter; the
// baseline engines run their WAL append-only.
func checkpointEveryFor(proto Protocol, rounds int) types.Round {
	switch proto {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		return walCheckpointEvery(rounds)
	default:
		return 0
	}
}

// walOptions converts the ClusterConfig knobs to wal.Options.
func (cfg ClusterConfig) walOptions() wal.Options {
	return wal.Options{
		Sync: wal.SyncPolicy{
			EveryRecord: cfg.WALSyncEveryRecord,
			Interval:    cfg.WALSyncInterval,
			Bytes:       cfg.WALSyncBytes,
			NoForceOwn:  cfg.WALNoForceOwn,
		},
		SegmentBytes: cfg.WALSegmentBytes,
	}
}

// Cluster is an n-replica consensus cluster running in one process. It
// exposes the replica-0 application view: submitted transactions are
// load-balanced across all replicas' mempools, and finalized blocks are
// streamed from replica 0 (all replicas finalize identical chains).
type Cluster struct {
	cfg     ClusterConfig
	params  types.Params
	maxN    int
	hub     *channel.Hub
	nodes   []*node.Node
	engines []protocol.Engine
	recs    []*wal.Recorder // nil entries without WALDir
	pools   []*mempool.Pool
	stores  []*dissem.Store // nil entries without Dissem
	// reconfigs are the per-replica hand-off slots for validator-set
	// changes (Banyan protocols; nil entries otherwise). They outlive
	// engine rebuilds, so a pending change survives a crash-restart.
	reconfigs []*membership.Reconfigurator
	// observers are the per-replica observability bundles (nil entries
	// without Obs). Like reconfigs they outlive engine rebuilds.
	observers []*obs.Observer

	// Rebuild materials for RestartReplica: the shared demo PKI and
	// beacon every engine was constructed from.
	keyring *crypto.Keyring
	signers []*crypto.Signer
	beacon  beacon.Beacon

	commits   chan Commit
	rawCommit chan node.CommitEvent

	mu       sync.Mutex
	nextPool int
	faults   []error
	started  bool
	stopped  bool
	crashed  []bool
	crashing []bool // teardown in progress: not running, not yet restartable
	held     []bool // excluded from Start, waiting for JoinReplica

	done chan struct{}
}

// NewCluster assembles a cluster; call Start to run it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("banyan: cluster needs N > 0")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolBanyan
	}
	if cfg.P == 0 {
		cfg.P = 1
	}
	var params types.Params
	var err error
	if cfg.F == 0 {
		params, err = DefaultParams(cfg.Protocol, cfg.N, cfg.P)
	} else {
		params, err = Params(cfg.Protocol, cfg.N, cfg.F, cfg.P)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Delta == 0 {
		cfg.Delta = 10 * time.Millisecond
		if cfg.LinkDelay > 0 {
			cfg.Delta = 2*cfg.LinkDelay + 5*time.Millisecond
		}
	}
	if cfg.MaxBlockBytes <= 0 {
		cfg.MaxBlockBytes = 1 << 20
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "ed25519"
	}
	if cfg.CommitBuffer <= 0 {
		cfg.CommitBuffer = 1024
	}
	if cfg.Dissem {
		if cfg.Protocol != ProtocolBanyan && cfg.Protocol != ProtocolBanyanNoFast {
			return nil, fmt.Errorf("banyan: Dissem requires a Banyan protocol, got %q", cfg.Protocol)
		}
		if cfg.DissemBatchBytes <= 0 {
			cfg.DissemBatchBytes = 64 << 10
		}
	}

	maxN := cfg.MaxN
	if maxN == 0 {
		maxN = params.N
	}
	if maxN < params.N {
		return nil, fmt.Errorf("banyan: MaxN %d below N %d", maxN, params.N)
	}
	if maxN > params.N && cfg.Protocol != ProtocolBanyan && cfg.Protocol != ProtocolBanyanNoFast {
		return nil, fmt.Errorf("banyan: MaxN requires a Banyan protocol, got %q", cfg.Protocol)
	}

	scheme, err := crypto.SchemeByName(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	keyring, signers := crypto.GenerateCluster(scheme, maxN, cfg.Seed)
	bc, err := beacon.NewRoundRobin(params.N)
	if err != nil {
		return nil, err
	}

	var hubOpts channel.Options
	if cfg.LinkDelay > 0 {
		d := cfg.LinkDelay
		hubOpts.Delay = func(_, _ types.ReplicaID) time.Duration { return d }
	}
	hub := channel.NewHub(maxN, hubOpts)

	c := &Cluster{
		cfg:       cfg,
		params:    params,
		maxN:      maxN,
		hub:       hub,
		nodes:     make([]*node.Node, maxN),
		engines:   make([]protocol.Engine, maxN),
		recs:      make([]*wal.Recorder, maxN),
		pools:     make([]*mempool.Pool, maxN),
		stores:    make([]*dissem.Store, maxN),
		reconfigs: make([]*membership.Reconfigurator, maxN),
		observers: make([]*obs.Observer, maxN),
		keyring:   keyring,
		signers:   signers,
		beacon:    bc,
		crashed:   make([]bool, maxN),
		crashing:  make([]bool, maxN),
		held:      make([]bool, maxN),
		commits:   make(chan Commit, cfg.CommitBuffer),
		rawCommit: make(chan node.CommitEvent, cfg.CommitBuffer),
		done:      make(chan struct{}),
	}
	switch cfg.Protocol {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		for i := range c.reconfigs {
			c.reconfigs[i] = &membership.Reconfigurator{}
		}
	}
	for _, h := range cfg.HoldStart {
		if h < 0 || h >= maxN {
			return nil, fmt.Errorf("banyan: HoldStart replica %d out of range (n=%d)", h, maxN)
		}
		c.held[h] = true
	}
	// Provisioned non-genesis identities are implicitly held: they enter
	// via JoinReplica once (or just before) a ConfigChange admits them.
	for i := params.N; i < maxN; i++ {
		c.held[i] = true
	}
	for i := 0; i < maxN; i++ {
		if cfg.Dissem {
			// The batch size caps individual transactions (oversize is a
			// typed Submit rejection, never truncation), and submitters
			// shard so one heavy client cannot starve the rest of a batch.
			c.pools[i] = mempool.NewShardedPool(0, cfg.DissemBatchBytes, params.N)
		} else {
			c.pools[i] = mempool.NewPool(0, cfg.MaxBlockBytes)
		}
		if cfg.Obs {
			o := obs.New(obs.Options{TraceEvents: cfg.ObsTraceEvents})
			c.observers[i] = o
			// Pull-style gauges refresh at scrape time: the pool is stable
			// across restarts, the store slot is read under c.mu because
			// buildReplica swaps it on restart.
			idx := i
			o.OnCollect(func(o *obs.Observer) {
				o.MempoolDepth.Set(int64(c.pools[idx].Len()))
				if s := c.storeOf(idx); s != nil {
					o.DissemStoreBytes.Set(s.HeldBytes())
				}
			})
		}
		if err := c.buildReplica(i); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// storeOf returns a replica's dissemination store slot under the lock
// (RestartReplica swaps it).
func (c *Cluster) storeOf(i int) *dissem.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stores[i]
}

// Observer returns a replica's observability bundle (nil without
// ClusterConfig.Obs or for an invalid replica). The bundle is fixed at
// construction and internally synchronized: histograms and the tracer
// are safe to read while the cluster runs, and it survives
// crash-restarts of its replica.
func (c *Cluster) Observer(replica int) *obs.Observer {
	if replica < 0 || replica >= len(c.observers) {
		return nil
	}
	return c.observers[replica]
}

// buildReplica assembles (or reassembles, after a crash) replica i's
// engine, optional WAL recorder, and node over the shared hub. The
// mempool is reused across restarts — submitted transactions survive.
func (c *Cluster) buildReplica(i int) error {
	id := types.ReplicaID(i)
	verifyCfg := crypto.VerifyConfig{Workers: c.cfg.VerifyWorkers, CacheSize: c.cfg.VerifyCacheSize}
	// One verifier per Banyan replica, shared between the engine and
	// the node's preverification stage so cache warm-ups reach the
	// engine. The baseline engines verify through the keyring
	// directly, so building one for them would be dead weight.
	verifier := newVerifierFor(c.cfg.Protocol, c.keyring, verifyCfg)
	if c.cfg.Dissem {
		// A fresh store per build: batch bodies are deliberately not
		// journaled (the WAL holds the refs inside blocks), so a restarted
		// replica re-fetches any finalized body it is missing — the ack
		// quorum guarantees f+1 other holders.
		c.stores[i] = dissem.NewStore(dissem.Config{
			Self:       id,
			N:          c.params.N,
			BatchBytes: c.cfg.DissemBatchBytes,
			InlineMax:  c.cfg.DissemInlineMax,
			BlockBytes: c.cfg.MaxBlockBytes,
			Source:     c.pools[i],
		})
	}
	eng, err := buildEngine(c.cfg.Protocol, c.params, id, c.keyring, verifier,
		c.signers[i], c.beacon, c.pools[i], engineTuning{
			delta:         c.cfg.Delta,
			deepPrune:     c.cfg.DeepPrune,
			pruneKeep:     types.Round(c.cfg.PruneKeep),
			pruneInterval: types.Round(c.cfg.PruneInterval),
			optimistic:    c.cfg.OptimisticProposals,
			dissem:        c.stores[i],
			reconfig:      c.reconfigs[i],
			obs:           c.observers[i],
		})
	if err != nil {
		return err
	}
	c.engines[i] = eng
	hosted := eng
	if c.cfg.WALDir != "" {
		walOpts := c.cfg.walOptions()
		if o := c.observers[i]; o != nil {
			walOpts.FlushHist = o.WALFlush
		}
		rec, err := wal.NewRecorder(wal.RecorderConfig{
			Dir:             filepath.Join(c.cfg.WALDir, fmt.Sprintf("replica-%d", i)),
			Engine:          eng,
			Options:         walOpts,
			ContinueOnError: c.cfg.WALContinueOnError,
			CheckpointEvery: checkpointEveryFor(c.cfg.Protocol, c.cfg.WALCheckpointRounds),
		})
		if err != nil {
			return err
		}
		c.recs[i] = rec
		hosted = rec
	}
	var commitCh chan<- node.CommitEvent
	if i == 0 {
		commitCh = c.rawCommit
	}
	n, err := node.New(node.Config{
		Engine:        hosted,
		Transport:     c.hub.Transport(id),
		Commits:       commitCh,
		OnFault:       func(err error) { c.recordFault(err) },
		Preverifier:   preverifierFor(verifier),
		VerifyWorkers: c.cfg.VerifyWorkers,
		Obs:           c.observers[i],
	})
	if err != nil {
		return err
	}
	c.nodes[i] = n
	return nil
}

// newVerifierFor builds the shared verification pipeline for the Banyan
// engines; the baselines verify through the keyring directly and get nil.
func newVerifierFor(proto Protocol, keyring *crypto.Keyring, cfg crypto.VerifyConfig) *crypto.Verifier {
	switch proto {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		return crypto.NewVerifier(keyring, cfg)
	default:
		return nil
	}
}

// preverifierFor adapts a possibly-nil verifier to the node's Preverifier
// interface (a typed nil inside the interface would dodge the node's
// nil check and panic on first use).
func preverifierFor(verifier *crypto.Verifier) node.Preverifier {
	if verifier == nil {
		return nil
	}
	return verifier
}

// engineTuning bundles the per-deployment engine knobs shared by
// Cluster and Replica construction.
type engineTuning struct {
	delta         time.Duration
	deepPrune     bool
	pruneKeep     types.Round
	pruneInterval types.Round
	optimistic    bool
	dissem        *dissem.Store
	reconfig      *membership.Reconfigurator
	obs           *obs.Observer
}

func buildEngine(proto Protocol, params types.Params, id types.ReplicaID,
	keyring *crypto.Keyring, verifier *crypto.Verifier, signer *crypto.Signer, bc beacon.Beacon,
	payloads protocol.PayloadSource, tune engineTuning) (protocol.Engine, error) {
	delta := tune.delta
	if tune.dissem != nil && proto != ProtocolBanyan && proto != ProtocolBanyanNoFast {
		return nil, fmt.Errorf("banyan: batch dissemination requires a Banyan protocol, got %q", proto)
	}
	switch proto {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		return core.New(core.Config{
			Params:              params,
			Self:                id,
			Keyring:             keyring,
			Verifier:            verifier,
			Signer:              signer,
			Beacon:              bc,
			Payloads:            payloads,
			Delta:               delta,
			Reconfig:            tune.reconfig,
			DisableFastPath:     proto == ProtocolBanyanNoFast,
			OptimisticProposals: tune.optimistic,
			DeepPrune:           tune.deepPrune,
			PruneKeep:           tune.pruneKeep,
			PruneInterval:       tune.pruneInterval,
			Dissem:              tune.dissem,
			Obs:                 tune.obs,
		})
	case ProtocolICC:
		return icc.New(icc.Config{
			Params:   params,
			Self:     id,
			Keyring:  keyring,
			Signer:   signer,
			Beacon:   bc,
			Payloads: payloads,
			Delta:    delta,
		})
	case ProtocolHotStuff:
		return hotstuff.New(hotstuff.Config{
			Params:      params,
			Self:        id,
			Keyring:     keyring,
			Signer:      signer,
			Beacon:      bc,
			Payloads:    payloads,
			ViewTimeout: 6 * delta,
		})
	case ProtocolStreamlet:
		return streamlet.New(streamlet.Config{
			Params:        params,
			Self:          id,
			Keyring:       keyring,
			Signer:        signer,
			Beacon:        bc,
			Payloads:      payloads,
			EpochDuration: 2 * delta,
		})
	default:
		return nil, fmt.Errorf("banyan: unknown protocol %q", proto)
	}
}

// Start boots every replica.
func (c *Cluster) Start() error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return fmt.Errorf("banyan: cluster already started")
	}
	c.started = true
	c.mu.Unlock()
	go c.pump()
	for i, n := range c.nodes {
		if c.held[i] {
			continue
		}
		if err := n.Start(); err != nil {
			return err
		}
	}
	return nil
}

// JoinReplica starts a replica that was held out of Start (see
// ClusterConfig.HoldStart): it boots cold, with no chain and no voting
// record, and catches up from its peers — over the sync subprotocol
// when they still hold the needed blocks, or by fetching a
// quorum-certified snapshot of the finalized window when they have
// pruned past its position (snapshot state sync).
func (c *Cluster) JoinReplica(replica int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replica < 0 || replica >= len(c.nodes) {
		return fmt.Errorf("banyan: no replica %d", replica)
	}
	if !c.started || c.stopped {
		return fmt.Errorf("banyan: cluster is not running")
	}
	if !c.held[replica] {
		return fmt.Errorf("banyan: replica %d was not held out of Start", replica)
	}
	// A joiner's transport exists from join time: the traffic the hub
	// queued for its slot while it was held predates the replica and is
	// discarded, exactly as a real deployment would never have seen it.
	c.hub.Drain(types.ReplicaID(replica))
	if err := c.nodes[replica].Start(); err != nil {
		return err
	}
	c.held[replica] = false
	return nil
}

// AddValidator proposes admitting a provisioned identity (see
// ClusterConfig.MaxN) to the validator set. The change rides in the next
// block a leader proposes; once that block finalizes at some round R the
// new set takes effect at R+1 — the joiner votes from its first
// post-activation round, having caught up through JoinReplica's state
// sync. The joining replica's key comes from the cluster's provisioned
// keyring. Banyan protocols only.
func (c *Cluster) AddValidator(replica int) error {
	if replica < 0 || replica >= c.maxN {
		return fmt.Errorf("banyan: no provisioned identity %d (MaxN=%d)", replica, c.maxN)
	}
	key := c.keyring.PublicKey(types.ReplicaID(replica))
	if key == nil {
		return fmt.Errorf("banyan: no key provisioned for replica %d", replica)
	}
	return c.proposeChange(types.ConfigChange{
		Op: types.ConfigAdd, Replica: types.ReplicaID(replica), PubKey: key,
	})
}

// RemoveValidator proposes evicting a validator from the set. From the
// activation round on, the evicted replica's votes carry no weight and
// certificates are verified against the shrunken set; the replica itself
// keeps running as a non-voting observer. Banyan protocols only.
func (c *Cluster) RemoveValidator(replica int) error {
	if replica < 0 || replica >= c.maxN {
		return fmt.Errorf("banyan: no replica %d", replica)
	}
	return c.proposeChange(types.ConfigChange{
		Op: types.ConfigRemove, Replica: types.ReplicaID(replica),
	})
}

// proposeChange hands a change to every replica's reconfiguration slot:
// whichever leader proposes first attaches it, a second attachment is a
// deterministic no-op under membership.Apply, and every slot clears when
// its engine observes the change finalized.
func (c *Cluster) proposeChange(change types.ConfigChange) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || c.stopped {
		return fmt.Errorf("banyan: cluster is not running")
	}
	proposed := false
	for _, r := range c.reconfigs {
		if r != nil {
			r.Propose(change)
			proposed = true
		}
	}
	if !proposed {
		return fmt.Errorf("banyan: reconfiguration requires a Banyan protocol, got %q", c.cfg.Protocol)
	}
	return nil
}

// Epoch returns the validator-set epoch a replica currently operates in
// (0 for the single-epoch baselines or an invalid replica). Safe to poll
// while the cluster runs; tests use it to await an epoch change.
func (c *Cluster) Epoch(replica int) uint32 {
	h := c.historyOf(replica)
	if h == nil {
		return 0
	}
	return h.Current().Epoch()
}

// MemberIDs returns the validator IDs of a replica's current epoch, in
// set order (nil for baselines or an invalid replica).
func (c *Cluster) MemberIDs(replica int) []int {
	h := c.historyOf(replica)
	if h == nil {
		return nil
	}
	members := h.Current().Members()
	out := make([]int, len(members))
	for i, m := range members {
		out[i] = int(m)
	}
	return out
}

// historyOf returns a replica's validator-set history, or nil when the
// engine has none (baseline protocols). The History handle is fixed at
// engine construction and internally synchronized, so reading it while
// the node loop owns the engine is safe.
func (c *Cluster) historyOf(replica int) *membership.History {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replica < 0 || replica >= len(c.engines) {
		return nil
	}
	h, ok := c.engines[replica].(interface{ History() *membership.History })
	if !ok {
		return nil
	}
	return h.History()
}

// pump converts node commit events into the public Commit stream.
func (c *Cluster) pump() {
	defer close(c.commits)
	for {
		select {
		case <-c.done:
			return
		case ev := <-c.rawCommit:
			for _, b := range ev.Blocks {
				commit := Commit{
					Round:        uint64(b.Round),
					Epoch:        b.Epoch,
					BlockID:      b.ID().String(),
					Proposer:     int(b.Proposer),
					Transactions: decodeTransactions(c.observerStore(), b.Payload),
					PayloadBytes: b.Payload.Size(),
					Path:         pathOf(ev.Explicit),
					At:           ev.At,
				}
				select {
				case c.commits <- commit:
				case <-c.done:
					return
				}
			}
		}
	}
}

// observerStore returns replica 0's dissemination store (nil without
// Dissem); RestartReplica swaps the slot under c.mu.
func (c *Cluster) observerStore() *dissem.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stores[0]
}

// decodeTransactions resolves a committed payload to its transaction
// list: inline payloads decode directly; digest-list payloads decode
// every referenced batch body (in ref order, from the local store —
// delivery gating guarantees the bodies arrived before the commit) and
// then the inline tail.
func decodeTransactions(store *dissem.Store, p types.Payload) [][]byte {
	if !p.HasBatches() {
		return mempool.DecodeBatch(p)
	}
	var txs [][]byte
	if store != nil {
		if bodies, ok := store.Bodies(p); ok {
			for _, body := range bodies {
				txs = append(txs, mempool.DecodeBatch(body)...)
			}
		}
	}
	if len(p.Data) > 0 {
		txs = append(txs, mempool.DecodeBatch(types.BytesPayload(p.Data))...)
	}
	return txs
}

// Submit queues a transaction on one replica's mempool (round-robin); it
// is proposed the next time that replica leads a round. It reports false
// when the mempool rejected the transaction.
func (c *Cluster) Submit(tx []byte) bool {
	c.mu.Lock()
	i := c.nextPool
	// Round-robin over the genesis members only: a provisioned joiner's
	// pool would strand transactions until (unless) it ever joins and
	// leads a round. SubmitTo reaches joiner pools explicitly.
	c.nextPool = (c.nextPool + 1) % c.params.N
	c.mu.Unlock()
	return c.pools[i].Submit(tx)
}

// SubmitTo queues a transaction on a specific replica's mempool.
func (c *Cluster) SubmitTo(replica int, tx []byte) bool {
	if replica < 0 || replica >= len(c.pools) {
		return false
	}
	return c.pools[replica].Submit(tx)
}

// SubmitAs queues a transaction on a specific replica's mempool under a
// submitter identity — the shard key of the submitter-sharded drain —
// returning the mempool's typed rejection (mempool.ErrTxTooLarge,
// mempool.ErrPoolFull, mempool.ErrTxEmpty) on failure.
func (c *Cluster) SubmitAs(replica int, submitter uint64, tx []byte) error {
	if replica < 0 || replica >= len(c.pools) {
		return fmt.Errorf("banyan: no replica %d", replica)
	}
	return c.pools[replica].SubmitFrom(submitter, tx)
}

// Commits streams finalized blocks as observed by replica 0. The channel
// closes on Stop.
func (c *Cluster) Commits() <-chan Commit { return c.commits }

// N returns the cluster size.
func (c *Cluster) N() int { return c.params.N }

// ParamsUsed returns the validated (n, f, p).
func (c *Cluster) ParamsUsed() (n, f, p int) {
	return c.params.N, c.params.F, c.params.P
}

// Faults returns safety faults reported by any replica (must stay empty).
func (c *Cluster) Faults() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]error, len(c.faults))
	copy(out, c.faults)
	return out
}

// Metrics returns a replica's protocol counters, including its mempool's
// typed admission rejections. Only valid after Stop.
func (c *Cluster) Metrics(replica int) map[string]int64 {
	c.mu.Lock()
	if replica < 0 || replica >= len(c.nodes) {
		c.mu.Unlock()
		return nil
	}
	n := c.nodes[replica] // RestartReplica swaps this slot under c.mu
	pool := c.pools[replica]
	c.mu.Unlock()
	m := n.Metrics()
	if m != nil && pool != nil {
		pool.Metrics(m)
	}
	return m
}

// CrashReplica simulates a crash of one replica: its node stops, and its
// WAL abandons the unsynced group-commit tail exactly as a dying process
// would. The rest of the cluster keeps running (crash at most f replicas
// to preserve liveness). RestartReplica brings it back.
func (c *Cluster) CrashReplica(replica int) error {
	c.mu.Lock()
	if replica < 0 || replica >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("banyan: no replica %d", replica)
	}
	if !c.started || c.stopped || c.crashed[replica] || c.crashing[replica] {
		c.mu.Unlock()
		return fmt.Errorf("banyan: replica %d is not running", replica)
	}
	c.crashing[replica] = true
	n, rec := c.nodes[replica], c.recs[replica]
	c.mu.Unlock()
	n.Stop()
	if rec != nil {
		rec.Crash()
	}
	// Flip to crashed only now that the log is closed: RestartReplica's
	// guard keys on crashed, so recovery can never reopen (and repair) a
	// directory a still-live Log is appending to.
	c.mu.Lock()
	c.crashing[replica] = false
	c.crashed[replica] = true
	c.mu.Unlock()
	return nil
}

// RestartReplica rebuilds a crashed replica from its write-ahead log and
// starts it: the log replays into a fresh engine (restoring blocktree,
// certificates, and the replica's own voting record), and the replica
// rejoins the cluster at its recovered round, catching up on whatever
// finalized while it was down via the sync subprotocol. Requires WALDir;
// restarting replica 0 re-delivers its recovered chain on Commits.
// Engines that cannot replay a journal (the hotstuff/streamlet
// baselines do not implement wal.Replayer) are refused rather than
// silently restarted fresh, which would risk equivocation.
func (c *Cluster) RestartReplica(replica int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replica < 0 || replica >= len(c.nodes) {
		return fmt.Errorf("banyan: no replica %d", replica)
	}
	if c.cfg.WALDir == "" {
		return fmt.Errorf("banyan: RestartReplica requires WALDir")
	}
	if !c.started || c.stopped || !c.crashed[replica] {
		return fmt.Errorf("banyan: replica %d is not crashed", replica)
	}
	// A dead process's sockets drop whatever peers sent while it was
	// down; the channel hub queues it instead. Discard that backlog so
	// recovery goes through WAL replay and the sync subprotocol, not
	// through a delivery channel no real deployment has.
	c.hub.Drain(types.ReplicaID(replica))
	if err := c.buildReplica(replica); err != nil {
		return err
	}
	if err := c.nodes[replica].Start(); err != nil {
		return err
	}
	c.crashed[replica] = false
	return nil
}

// RestartReplicaFresh simulates recovery from total disk loss: the
// crashed replica's write-ahead log directory is deleted and the
// replica restarts with no durable state at all. It cannot replay — it
// rebuilds its chain from peers instead, through sync responses while
// peers still hold the blocks and through quorum-certified snapshot
// state sync once they have pruned past its position. The replica's
// voting record is gone with the disk, so unlike RestartReplica this is
// only crash-safe when the replica did not vote in any round still
// undecided — the same caveat any real deployment restoring from
// backup carries. Requires WALDir and a crashed replica.
func (c *Cluster) RestartReplicaFresh(replica int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replica < 0 || replica >= len(c.nodes) {
		return fmt.Errorf("banyan: no replica %d", replica)
	}
	if c.cfg.WALDir == "" {
		return fmt.Errorf("banyan: RestartReplicaFresh requires WALDir")
	}
	if !c.started || c.stopped || !c.crashed[replica] {
		return fmt.Errorf("banyan: replica %d is not crashed", replica)
	}
	if err := os.RemoveAll(filepath.Join(c.cfg.WALDir, fmt.Sprintf("replica-%d", replica))); err != nil {
		return fmt.Errorf("banyan: wiping replica %d log: %w", replica, err)
	}
	// Same socket semantics as RestartReplica: nothing queued while the
	// process was dead survives into the restarted life.
	c.hub.Drain(types.ReplicaID(replica))
	if err := c.buildReplica(replica); err != nil {
		return err
	}
	if err := c.nodes[replica].Start(); err != nil {
		return err
	}
	c.crashed[replica] = false
	return nil
}

// FinalizedChain returns a replica's finalized block IDs (hex, round
// order). Only valid after Stop; integration tests use it to assert
// byte-identical chains across live and restarted replicas.
func (c *Cluster) FinalizedChain(replica int) []string {
	if replica < 0 || replica >= len(c.engines) {
		return nil
	}
	select {
	case <-c.done:
	default:
		return nil // still running: the engine is owned by its node loop
	}
	c.mu.Lock()
	eng := c.engines[replica]
	c.mu.Unlock()
	treed, ok := eng.(interface{ Tree() *blocktree.Tree })
	if !ok {
		return nil
	}
	ids := treed.Tree().FinalizedChain()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

// Stop shuts the cluster down: replicas first (flushing WAL tails), then
// the hub.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	// A replica mid-CrashReplica (crashing set, crashed not yet) must be
	// treated as crashed: closing its log here would flush the very tail
	// the simulated crash is about to abandon.
	crashed := make([]bool, len(c.crashed))
	for i := range crashed {
		crashed[i] = c.crashed[i] || c.crashing[i]
	}
	held := make([]bool, len(c.held))
	copy(held, c.held)
	c.mu.Unlock()
	for i, n := range c.nodes {
		if held[i] {
			// Still held out of Start: its node loop never ran, so Stop
			// would wait forever; its log (if any) has nothing buffered.
			if rec := c.recs[i]; rec != nil {
				if err := rec.Close(); err != nil {
					c.recordFault(err)
				}
			}
			continue
		}
		n.Stop()
		if rec := c.recs[i]; rec != nil && !crashed[i] {
			// A log that died mid-run means the replica ran without
			// durability; surface it instead of reporting a clean run.
			if err := rec.Err(); err != nil {
				c.recordFault(err)
			}
			if err := rec.Close(); err != nil {
				c.recordFault(err)
			}
		}
	}
	c.hub.Close()
	close(c.done)
}

func (c *Cluster) recordFault(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = append(c.faults, err)
}
