// Package banyan is the public API of this repository: a Go implementation
// of Banyan — the fast rotating-leader BFT protocol of Vonlanthen,
// Sliwinski, Albarello and Wattenhofer (Middleware 2024) — together with
// the ICC, chained-HotStuff and Streamlet baselines, an in-process cluster
// runtime, a TCP replica runtime for multi-process deployments, and a
// deterministic WAN simulation harness that regenerates the paper's
// evaluation.
//
// Quick start (see examples/quickstart for the full program):
//
//	cluster, _ := banyan.NewCluster(banyan.ClusterConfig{N: 4})
//	cluster.Start()
//	cluster.Submit([]byte("tx"))
//	commit := <-cluster.Commits()
//
// Three layers are exposed:
//
//   - Cluster: an n-replica consensus cluster in one process (channel
//     transport), for applications and tests.
//   - Replica: a single replica over TCP, for multi-process deployments
//     (cmd/banyan wires it to flags).
//   - RunExperiment: the paper's evaluation harness on a simulated WAN
//     (cmd/bench regenerates every table and figure with it).
package banyan

import (
	"fmt"
	"time"

	"banyan/internal/protocol"
	"banyan/internal/types"
)

// Protocol selects a consensus protocol.
type Protocol string

// The four protocols of the paper's evaluation. ProtocolBanyanNoFast is
// Banyan with the fast path disabled (the ablation of DESIGN.md §6).
const (
	ProtocolBanyan       Protocol = "banyan"
	ProtocolBanyanNoFast Protocol = "banyan-nofast"
	ProtocolICC          Protocol = "icc"
	ProtocolHotStuff     Protocol = "hotstuff"
	ProtocolStreamlet    Protocol = "streamlet"
)

// FinalizationPath says how a block was explicitly finalized.
type FinalizationPath string

// Finalization paths (Definition 6.1 of the paper).
const (
	// PathFast is FP-finalization: n-p fast votes, one round trip.
	PathFast FinalizationPath = "fast"
	// PathSlow is SP-finalization: a quorum of finalization votes.
	PathSlow FinalizationPath = "slow"
	// PathIndirect covers blocks finalized via a received certificate or
	// implicitly as ancestors of an explicitly finalized block.
	PathIndirect FinalizationPath = "indirect"
)

func pathOf(m protocol.FinalizationMode) FinalizationPath {
	switch m {
	case protocol.FinalizeFast:
		return PathFast
	case protocol.FinalizeSlow:
		return PathSlow
	default:
		return PathIndirect
	}
}

// Commit is one finalized block delivered to the application.
type Commit struct {
	// Round is the block's round (chain height).
	Round uint64
	// Epoch is the validator-set epoch the block was certified under
	// (always 0 for the single-epoch baseline protocols).
	Epoch uint32
	// BlockID is the hex-prefixed block identifier.
	BlockID string
	// Proposer is the replica that proposed the block.
	Proposer int
	// Transactions are the decoded client transactions (empty for payload
	// workloads that are not transaction batches).
	Transactions [][]byte
	// PayloadBytes is the total payload size.
	PayloadBytes int
	// Path says how the finalization was reached.
	Path FinalizationPath
	// At is the local time the hosting replica finalized the block.
	At time.Time
}

// Params validates and normalizes (n, f, p) for a protocol: Banyan
// enforces n >= max(3f+2p-1, 3f+1) with 1 <= p <= f; the baselines
// enforce n >= 3f+1.
func Params(proto Protocol, n, f, p int) (types.Params, error) {
	switch proto {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		pr := types.Params{N: n, F: f, P: p}
		if err := pr.Validate(); err != nil {
			return types.Params{}, err
		}
		if p < 1 && proto == ProtocolBanyan {
			return types.Params{}, fmt.Errorf("banyan: p must be at least 1")
		}
		return pr, nil
	case ProtocolICC, ProtocolHotStuff, ProtocolStreamlet:
		if n < 3*f+1 {
			return types.Params{}, fmt.Errorf("banyan: n = %d below 3f+1 for f = %d", n, f)
		}
		return types.Params{N: n, F: f}, nil
	default:
		return types.Params{}, fmt.Errorf("banyan: unknown protocol %q", proto)
	}
}

// DefaultParams picks the largest tolerable f for n replicas: for Banyan
// the largest f compatible with the given p; for baselines f = (n-1)/3.
func DefaultParams(proto Protocol, n, p int) (types.Params, error) {
	switch proto {
	case ProtocolBanyan, ProtocolBanyanNoFast:
		if p < 1 {
			p = 1
		}
		return types.BanyanParams(n, p)
	default:
		return types.Params{N: n, F: types.MaxFaultyFor(n)}, nil
	}
}
