package banyan

import (
	"testing"
	"time"
)

// TestClusterFreshJoinAndDiskLossRestart drives the two provisioning
// paths that depend on peer snapshot state sync, against a deep-pruned
// cluster where block-by-block catch-up from round 1 is impossible:
//
//  1. a replica held out of Start joins mid-run with no history
//     (JoinReplica), and
//  2. a crashed replica loses its disk and restarts with an empty WAL
//     (RestartReplicaFresh).
//
// Both must fetch a quorum-certified snapshot, rejoin the live rounds,
// and end holding a byte-identical suffix of the observer's chain.
func TestClusterFreshJoinAndDiskLossRestart(t *testing.T) {
	const (
		joiner = 4
		victim = 1
	)
	cluster, err := NewCluster(ClusterConfig{
		N:      5,
		Delta:  5 * time.Millisecond,
		Scheme: "hmac",
		WALDir: t.TempDir(),
		// Tight deep-pruned windows: every replica holds only its last 8
		// finalized rounds, so a joiner 30+ rounds behind cannot be served
		// block-by-block and must take the snapshot path.
		DeepPrune:           true,
		PruneKeep:           8,
		PruneInterval:       8,
		WALCheckpointRounds: 8,
		HoldStart:           []int{joiner},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	if err := cluster.JoinReplica(0); err == nil {
		t.Fatal("joining a replica that was never held must be rejected")
	}

	// Phase 1: fresh join, 30+ rounds behind the window.
	waitForRound(t, cluster, 30, 30*time.Second)
	if err := cluster.JoinReplica(joiner); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 70, 30*time.Second)

	// Phase 2: disk loss. (Sequenced after the join completes — with
	// quorum n-f = 4 of 5, only one replica may be absent at a time.)
	if err := cluster.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 90, 30*time.Second)
	if err := cluster.RestartReplicaFresh(victim); err != nil {
		t.Fatal(err)
	}
	waitForRound(t, cluster, 150, 30*time.Second)
	cluster.Stop()

	if faults := cluster.Faults(); len(faults) > 0 {
		t.Fatalf("safety faults: %v", faults)
	}
	ref := cluster.FinalizedChain(0)
	if len(ref) == 0 {
		t.Fatal("observer finalized nothing")
	}
	for name, id := range map[string]int{"joiner": joiner, "victim": victim} {
		got := cluster.FinalizedChain(id)
		if len(got) == 0 {
			t.Fatalf("%s finalized nothing", name)
		}
		// The windowed chain must be a byte-identical suffix of the
		// observer's (it starts at the adopted snapshot floor, not 1).
		start := -1
		for i, rid := range ref {
			if rid == got[0] {
				start = i
				break
			}
		}
		if start < 0 {
			t.Fatalf("%s window start %s not on observer chain", name, got[0])
		}
		for i := 0; i < len(got) && start+i < len(ref); i++ {
			if ref[start+i] != got[i] {
				t.Fatalf("%s diverges at window offset %d", name, i)
			}
		}
		if len(got) < 40 {
			t.Errorf("%s holds only %d finalized blocks — it did not keep up after syncing", name, len(got))
		}
		m := cluster.Metrics(id)
		if m["statesync_fetches"] == 0 {
			t.Errorf("%s caught up without a snapshot fetch", name)
		}
		t.Logf("%s: %d blocks (observer %d), fetches %d, rejected %d",
			name, len(got), len(ref), m["statesync_fetches"], m["statesync_rejected"])
	}
	if m := cluster.Metrics(victim); m["wal_replayed_records"] != 0 {
		t.Errorf("victim replayed %d records from a wiped disk", m["wal_replayed_records"])
	}
}
