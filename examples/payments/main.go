// Payments: a latency-sensitive payment ledger — the use case behind the
// paper's core claim that confirmation latency "is at the forefront of the
// user experience". Payments are submitted continuously; the program
// measures per-payment confirmation latency (submission to finalization)
// and reports how many confirmations rode the single-round-trip fast path.
//
// Run with a simulated wide-area link delay to see the fast path's effect:
// the cluster is configured with a 20ms one-way delay between replicas, so
// a fast-path confirmation costs ~2 delays and a slow-path one ~3.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"time"

	"banyan"
)

type payment struct {
	id        uint64
	submitted time.Time
}

func main() {
	const linkDelay = 20 * time.Millisecond
	cluster, err := banyan.NewCluster(banyan.ClusterConfig{
		N:         4,
		LinkDelay: linkDelay,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	const payments = 60
	pending := make(map[uint64]payment, payments)
	go func() {
		for i := uint64(1); i <= payments; i++ {
			tx := make([]byte, 64) // id + padding, a payment record
			binary.LittleEndian.PutUint64(tx, i)
			pending[i] = payment{id: i, submitted: time.Now()}
			if !cluster.Submit(tx) {
				log.Fatalf("payment %d rejected", i)
			}
			time.Sleep(25 * time.Millisecond) // ~40 payments/s
		}
	}()

	var (
		latencies []time.Duration
		fastPath  int
		confirmed int
	)
	timeout := time.After(60 * time.Second)
	for confirmed < payments {
		select {
		case commit := <-cluster.Commits():
			now := time.Now()
			for _, tx := range commit.Transactions {
				if len(tx) < 8 {
					continue
				}
				id := binary.LittleEndian.Uint64(tx)
				p, ok := pending[id]
				if !ok {
					continue
				}
				delete(pending, id)
				confirmed++
				latencies = append(latencies, now.Sub(p.submitted))
				if commit.Path == banyan.PathFast {
					fastPath++
				}
			}
		case <-timeout:
			log.Fatalf("timed out: %d/%d payments confirmed", confirmed, payments)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	mean := sum / time.Duration(len(latencies))
	fmt.Printf("confirmed %d payments over a %v-delay network\n", confirmed, linkDelay)
	fmt.Printf("confirmation latency: mean=%.1fms p50=%.1fms p95=%.1fms max=%.1fms\n",
		ms(mean), ms(latencies[len(latencies)/2]),
		ms(latencies[len(latencies)*95/100]), ms(latencies[len(latencies)-1]))
	fmt.Printf("fast-path confirmations: %d/%d\n", fastPath, confirmed)
	fmt.Println("(latency includes waiting for the submitting replica's next turn as leader)")
	if faults := cluster.Faults(); len(faults) > 0 {
		log.Fatalf("safety faults: %v", faults)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
