// Wansim: the paper's wide-area evaluation through the public API. Runs
// Banyan (at several values of the fast-path parameter p) against ICC on
// the three testbed topologies of Figure 5, entirely inside the
// deterministic simulator — a 120-second global deployment replays in
// around a second.
package main

import (
	"fmt"
	"log"
	"time"

	"banyan"
)

func main() {
	const (
		blockSize = 400 << 10
		duration  = 30 * time.Second
	)
	type runCfg struct {
		label    string
		topology string
		n        int
		proto    banyan.Protocol
		f, p     int
	}
	runs := []runCfg{
		{"4 global DCs, n=19, ICC", "4dc-global", 19, banyan.ProtocolICC, 6, 0},
		{"4 global DCs, n=19, Banyan p=1", "4dc-global", 19, banyan.ProtocolBanyan, 6, 1},
		{"4 global DCs, n=19, Banyan p=4", "4dc-global", 19, banyan.ProtocolBanyan, 4, 4},
		{"4 global DCs, n=4,  ICC", "4dc-global", 4, banyan.ProtocolICC, 1, 0},
		{"4 global DCs, n=4,  Banyan p=1", "4dc-global", 4, banyan.ProtocolBanyan, 1, 1},
		{"19 regions,   n=19, ICC", "global", 19, banyan.ProtocolICC, 6, 0},
		{"19 regions,   n=19, Banyan p=1", "global", 19, banyan.ProtocolBanyan, 6, 1},
		{"19 regions,   n=19, Banyan p=4", "global", 19, banyan.ProtocolBanyan, 4, 4},
	}

	fmt.Printf("%-34s %10s %10s %12s %6s %6s\n",
		"configuration", "mean(ms)", "p95(ms)", "tput(MB/s)", "fast", "slow")
	baselines := make(map[string]time.Duration) // topology/n -> ICC mean
	for _, rc := range runs {
		res, err := banyan.RunExperiment(banyan.ExperimentConfig{
			Protocol:       rc.proto,
			N:              rc.n,
			F:              rc.f,
			P:              rc.p,
			Topology:       rc.topology,
			BlockSizeBytes: blockSize,
			Duration:       duration,
			Seed:           1,
		})
		if err != nil {
			log.Fatalf("%s: %v", rc.label, err)
		}
		key := fmt.Sprintf("%s/%d", rc.topology, rc.n)
		note := ""
		if rc.proto == banyan.ProtocolICC {
			baselines[key] = res.MeanLatency
		} else if icc, ok := baselines[key]; ok {
			note = fmt.Sprintf("  (%+.1f%% vs ICC)", 100*(float64(res.MeanLatency)/float64(icc)-1))
		}
		fmt.Printf("%-34s %10.1f %10.1f %12.2f %6d %6d%s\n",
			rc.label,
			float64(res.MeanLatency)/1e6, float64(res.P95)/1e6,
			res.ThroughputBps/1e6, res.FastFinalized, res.SlowFinalized, note)
	}
	fmt.Println("\npaper (section 9): Banyan p=1 ≈ -10% vs ICC at n=19/4DC, ≈ -25% at p=4;")
	fmt.Println("-5.8% (p=1) and -16% (p=4) on the 19-region global network.")
}
