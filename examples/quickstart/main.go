// Quickstart: a four-replica Banyan cluster in one process. Submit a few
// transactions, watch them come out finalized — most after a single round
// trip (the fast path).
package main

import (
	"fmt"
	"log"
	"time"

	"banyan"
)

func main() {
	// Four replicas tolerate one Byzantine fault (f=1) with fast-path
	// slack p=1: the fast path fires whenever all four are responsive.
	cluster, err := banyan.NewCluster(banyan.ClusterConfig{N: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	for i := 0; i < 5; i++ {
		tx := fmt.Sprintf("transfer #%d", i)
		if !cluster.Submit([]byte(tx)) {
			log.Fatalf("mempool rejected %q", tx)
		}
	}

	remaining := 5
	timeout := time.After(30 * time.Second)
	for remaining > 0 {
		select {
		case commit := <-cluster.Commits():
			for _, tx := range commit.Transactions {
				fmt.Printf("finalized %-14q in round %-4d via the %s path\n",
					string(tx), commit.Round, commit.Path)
				remaining--
			}
		case <-timeout:
			log.Fatal("timed out waiting for finalization")
		}
	}
	if faults := cluster.Faults(); len(faults) > 0 {
		log.Fatalf("safety faults: %v", faults)
	}
	fmt.Println("all transactions finalized; no safety faults")
}
