// Kvstore: a replicated key-value store on top of the consensus API — the
// canonical state machine replication application (the "world computer"
// the paper's introduction motivates).
//
// Commands are "SET key value" and "DEL key" strings submitted as
// transactions; the committed block stream is the authoritative operation
// log. Because every replica finalizes the identical chain, applying the
// log deterministically yields the identical store everywhere — this
// program applies it twice independently and checks the copies agree.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"banyan"
)

// store is the replicated state machine: a string map plus an operation
// counter, updated only from committed transactions.
type store struct {
	data map[string]string
	ops  int
}

func newStore() *store { return &store{data: make(map[string]string)} }

// apply executes one committed command.
func (s *store) apply(tx []byte) {
	parts := strings.SplitN(string(tx), " ", 3)
	switch {
	case len(parts) == 3 && parts[0] == "SET":
		s.data[parts[1]] = parts[2]
		s.ops++
	case len(parts) == 2 && parts[0] == "DEL":
		delete(s.data, parts[1])
		s.ops++
	}
}

// digest summarizes the store's state for cross-replica comparison.
func (s *store) digest() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, s.data[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

func main() {
	cluster, err := banyan.NewCluster(banyan.ClusterConfig{N: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// A small workload: set 26 keys, overwrite a few, delete some.
	var commands []string
	for c := 'a'; c <= 'z'; c++ {
		commands = append(commands, fmt.Sprintf("SET %c value-%c", c, c))
	}
	commands = append(commands,
		"SET a overwritten",
		"SET m overwritten",
		"DEL z", "DEL q",
	)
	// All commands go through one replica's mempool: a mempool preserves
	// FIFO order for a single client, so the overwrites land after the
	// initial writes. (Round-robin submission across replicas would still
	// be consistent, but the interleaving across proposers is arbitrary.)
	for _, cmd := range commands {
		if !cluster.SubmitTo(0, []byte(cmd)) {
			log.Fatalf("mempool rejected %q", cmd)
		}
	}

	// Two independent state machines consuming the same log must converge
	// to the same state.
	primary, audit := newStore(), newStore()
	expected := len(commands)
	timeout := time.After(30 * time.Second)
	for primary.ops < expected {
		select {
		case commit := <-cluster.Commits():
			for _, tx := range commit.Transactions {
				primary.apply(tx)
				audit.apply(tx)
			}
		case <-timeout:
			log.Fatalf("timed out: applied %d/%d operations", primary.ops, expected)
		}
	}

	fmt.Printf("applied %d operations; %d keys live\n", primary.ops, len(primary.data))
	fmt.Printf("primary state digest: %s\n", primary.digest())
	fmt.Printf("audit   state digest: %s\n", audit.digest())
	if primary.digest() != audit.digest() {
		log.Fatal("replicated state machines diverged")
	}
	fmt.Printf("a = %q (overwritten), m = %q, z deleted: %v\n",
		primary.data["a"], primary.data["m"], primary.data["z"] == "")
	if faults := cluster.Faults(); len(faults) > 0 {
		log.Fatalf("safety faults: %v", faults)
	}
	fmt.Println("replicated key-value store is consistent")
}
